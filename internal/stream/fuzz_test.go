package stream

import (
	"bytes"
	"testing"

	"gamestreamsr/internal/frame"
)

// FuzzReadMsg drives the wire-format parser with arbitrary bytes; the
// invariant is no panic and a well-formed message on success.
func FuzzReadMsg(f *testing.F) {
	var hello, accept, fr, input, bye bytes.Buffer
	WriteHello(&hello, Hello{Device: "seed", RoIWindow: 300, Scale: 2})
	WriteAccept(&accept, Accept{Width: 1280, Height: 720, GOPSize: 60, QStep: 6})
	WriteFrame(&fr, FramePacket{Index: 7, Keyenc: true, RoI: frame.Rect{X: 1, Y: 2, W: 3, H: 4}, Payload: []byte("data")})
	WriteInput(&input, InputPacket{Seq: 9, Payload: []byte("in")})
	WriteBye(&bye)
	for _, b := range [][]byte{hello.Bytes(), accept.Bytes(), fr.Bytes(), input.Bytes(), bye.Bytes(), {}, {0xFF}} {
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMsg(bytes.NewReader(data))
		if err != nil {
			return
		}
		switch msg.Type {
		case MsgHello:
			if msg.Hello == nil || msg.Hello.RoIWindow <= 0 {
				t.Fatal("malformed hello accepted")
			}
		case MsgAccept:
			if msg.Accept == nil || msg.Accept.Width <= 0 {
				t.Fatal("malformed accept accepted")
			}
		case MsgFrame:
			if msg.Frame == nil {
				t.Fatal("frame without body")
			}
		case MsgInput:
			if msg.Input == nil {
				t.Fatal("input without body")
			}
		case MsgBye:
		default:
			t.Fatalf("unknown type %v accepted", msg.Type)
		}
	})
}
