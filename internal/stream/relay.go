package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gamestreamsr/internal/frame"
	"gamestreamsr/internal/telemetry"
)

// This file is the broadcast relay (DESIGN.md §14): the RTMP-style
// publish/subscribe layer that turns one publisher session's encoded GOP
// stream into N spectator streams without re-encoding.
//
//   - A publisher registers a Channel under a name; its session's frame
//     packets are Published into the channel from the encode tap.
//   - The channel caches the stream geometry (Accept) and the last intra
//     frame — the sequence-header cache — so a late joiner receives
//     (cached config, cached keyframe, live tail) and decodes immediately
//     instead of waiting out the GOP.
//   - Every subscriber has its own bounded queue. A slow reader climbs a
//     two-rung eviction ladder: first drop-to-keyframe (its queue is
//     flushed and deltas are skipped until the next intra — the stream
//     stays decodable), then, if the queue overflows again with zero
//     reader progress since the flush, disconnect. The publisher never
//     blocks on a subscriber.

// Relay errors, surfaced to subscribers as protocol-level rejects.
var (
	errUnknownChannel = errors.New("stream: unknown channel")
	errChannelTaken   = errors.New("stream: channel already has a publisher")
	errChannelClosed  = errors.New("stream: channel closed")
	errSubscriberCap  = errors.New("stream: subscriber limit reached")
)

// DefaultSubscriberQueue is the default per-subscriber send-queue depth:
// half a second of 60 FPS frames — enough to ride out a scheduling hiccup,
// small enough that a stalled reader trips the eviction ladder within one
// GOP rather than buffering the whole stream.
const DefaultSubscriberQueue = 32

// relayFrame is one fan-out unit: the shared packet (its payload is an
// immutable copy owned by the relay) plus its enqueue time, from which a
// subscriber's queue age is measured.
type relayFrame struct {
	pkt FramePacket
	at  time.Time
}

// relayMetrics holds the relay's telemetry handles, resolved once. All
// fields are nil-safe no-ops without a registry.
type relayMetrics struct {
	channels    *telemetry.Gauge     // stream_relay_channels_active
	subscribers *telemetry.Gauge     // stream_subscribers_active
	fanout      *telemetry.Counter   // frames enqueued to subscribers
	dropped     *telemetry.Counter   // frames flushed by drop-to-keyframe
	dropToKey   *telemetry.Counter   // rung-1 ladder entries
	evicted     *telemetry.Counter   // rung-2 disconnects
	lateJoins   *telemetry.Counter   // subscribers served a cached keyframe
	parked      *telemetry.Gauge     // stream_relay_channels_parked
	parks       *telemetry.Counter   // publisher drops that parked a channel
	reclaims    *telemetry.Counter   // parked channels reclaimed by resume token
	parkExpired *telemetry.Counter   // parks that ran out the grace window
	parkStall   *telemetry.Histogram // stream_relay_park_stall_seconds: park → reclaim
}

// Relay is the channel registry: publishers create channels, subscribers
// attach to them. All methods are safe for concurrent use.
type Relay struct {
	reg     *telemetry.Registry
	mets    relayMetrics
	maxSubs int
	queue   int
	grace   time.Duration

	mu       sync.Mutex
	channels map[string]*Channel
	closed   bool
}

// SetParkGrace sets how long a publisher-dropped channel stays parked
// awaiting a resume-token reclaim (<= 0 disables parking: a dropped
// publisher closes its channel immediately, the pre-v4 behaviour).
func (r *Relay) SetParkGrace(d time.Duration) { r.grace = d }

// NewRelay builds a relay. maxSubs bounds subscribers per channel
// (<=0 means 16); queue is the per-subscriber send-queue depth (<=0 means
// DefaultSubscriberQueue). reg may be nil.
func NewRelay(reg *telemetry.Registry, maxSubs, queue int) *Relay {
	if maxSubs <= 0 {
		maxSubs = 16
	}
	if queue <= 0 {
		queue = DefaultSubscriberQueue
	}
	return &Relay{
		reg: reg,
		mets: relayMetrics{
			channels:    reg.Gauge("stream_relay_channels_active"),
			subscribers: reg.Gauge("stream_subscribers_active"),
			fanout:      reg.Counter("stream_relay_frames_fanout_total"),
			dropped:     reg.Counter("stream_relay_dropped_frames_total"),
			dropToKey:   reg.Counter("stream_relay_drop_to_key_total"),
			evicted:     reg.Counter("stream_relay_subscribers_evicted_total"),
			lateJoins:   reg.Counter("stream_relay_late_joins_total"),
			parked:      reg.Gauge("stream_relay_channels_parked"),
			parks:       reg.Counter("stream_relay_channel_parks_total"),
			reclaims:    reg.Counter("stream_relay_channel_reclaims_total"),
			parkExpired: reg.Counter("stream_relay_park_expired_total"),
			parkStall:   reg.Histogram("stream_relay_park_stall_seconds", telemetry.LatencyBuckets()),
		},
		maxSubs:  maxSubs,
		queue:    queue,
		channels: map[string]*Channel{},
	}
}

// Create registers a new publish channel under name, caching acc as the
// geometry every subscriber's Accept is built from. Fails if the name
// already has a live publisher.
func (r *Relay) Create(name string, acc Accept) (*Channel, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errChannelClosed
	}
	if _, ok := r.channels[name]; ok {
		return nil, errChannelTaken
	}
	ch := &Channel{
		name:   name,
		relay:  r,
		accept: acc,
		subs:   map[*subscriber]struct{}{},
		// Per-channel subscriber gauge: unregistered when the channel
		// closes, so channel churn doesn't grow /metrics without bound.
		subGauge: r.reg.Gauge("stream_channel_subscribers_" + metricLabel(name)),
	}
	r.channels[name] = ch
	r.mets.channels.Add(1)
	return ch, nil
}

// Lookup returns the named channel, or nil if no publisher owns it.
func (r *Relay) Lookup(name string) *Channel {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.channels[name]
}

// remove unlinks a closed channel from the registry.
func (r *Relay) remove(ch *Channel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.channels[ch.name] == ch {
		delete(r.channels, ch.name)
		r.mets.channels.Add(-1)
	}
}

// Shutdown force-closes every channel: subscriber queues are closed with
// the queued tail abandoned, so their writers say Bye and exit promptly.
func (r *Relay) Shutdown() {
	r.mu.Lock()
	r.closed = true
	chans := make([]*Channel, 0, len(r.channels))
	for _, ch := range r.channels {
		chans = append(chans, ch)
	}
	r.mu.Unlock()
	for _, ch := range chans {
		ch.close(true)
	}
}

// Channel is one publisher's broadcast stream: the cached Accept geometry,
// the cached last intra frame and the live subscriber set.
//
// A channel whose publisher drops uncleanly is *parked* rather than closed
// (DESIGN.md §15): it keeps its registry entry (so a second publisher's
// Hello still gets RejectChannelTaken), its cached geometry and keyframe,
// and its live subscribers, for a grace window. A publisher reconnecting
// with the channel's resume token reclaims it — subscribers ride through
// with a bounded stall instead of a disconnect — and a park that runs out
// the window closes the channel gracefully.
type Channel struct {
	name     string
	relay    *Relay
	accept   Accept
	subGauge *telemetry.Gauge

	mu        sync.Mutex
	key       *FramePacket // last intra frame; payload owned by the relay
	subs      map[*subscriber]struct{}
	closed    bool
	token     string // resume token that may reclaim a park
	origin    string // first publisher's identity, stable across reclaims
	parked    bool
	parkedAt  time.Time
	parkTimer *time.Timer
}

// setResume records the session's resume token and the publisher identity
// the channel stays correlated with across reconnects.
func (ch *Channel) setResume(token, origin string) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.token = token
	if ch.origin == "" {
		ch.origin = origin
	}
}

// Origin returns the channel's first publisher identity (its remote
// address), stable across resume reclaims — the label per-session metrics
// and flight records correlate a reconnecting publisher under.
func (ch *Channel) Origin() string {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.origin
}

// park begins the grace window after a publisher drop. Everything is
// retained — registry entry, cached Accept, cached keyframe, subscribers —
// awaiting a resume-token reclaim; the timer closes the channel gracefully
// if none arrives. Returns false (caller should close instead) when
// parking is disabled, the channel has no resume token, or it is already
// closed.
func (ch *Channel) park() bool {
	grace := ch.relay.grace
	ch.mu.Lock()
	if grace <= 0 || ch.closed || ch.parked || ch.token == "" {
		ch.mu.Unlock()
		return false
	}
	ch.parked = true
	ch.parkedAt = time.Now()
	ch.parkTimer = time.AfterFunc(grace, ch.expire)
	ch.mu.Unlock()
	ch.relay.mets.parks.Inc()
	ch.relay.mets.parked.Add(1)
	return true
}

// expire ends a park whose grace window ran out: the channel closes
// gracefully (subscribers get their queued tail, then a Bye). A reclaim
// that lands first wins — both paths check parked under the channel mutex.
func (ch *Channel) expire() {
	ch.mu.Lock()
	if ch.closed || !ch.parked {
		ch.mu.Unlock()
		return
	}
	ch.parked = false
	ch.parkTimer = nil
	ch.mu.Unlock()
	ch.relay.mets.parked.Add(-1)
	ch.relay.mets.parkExpired.Inc()
	ch.close(false)
}

// Reclaim hands the parked channel registered under name back to a
// publisher that presented its resume token: the grace timer stops, and
// any subscriber sitting in drop-to-keyframe state is re-seeded from the
// keyframe cache so it presents immediately while the reclaimed publisher's
// opening intra restarts the live tail. A wrong token — or a live,
// un-parked channel — comes back as errChannelTaken, exactly what a second
// publisher's Hello must see until the park expires.
func (r *Relay) Reclaim(name, token string) (*Channel, error) {
	r.mu.Lock()
	ch := r.channels[name]
	r.mu.Unlock()
	if ch == nil {
		return nil, errUnknownChannel
	}
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return nil, errUnknownChannel
	}
	if !ch.parked || token == "" || token != ch.token {
		ch.mu.Unlock()
		return nil, errChannelTaken
	}
	ch.parked = false
	if ch.parkTimer != nil {
		ch.parkTimer.Stop()
		ch.parkTimer = nil
	}
	stall := time.Since(ch.parkedAt)
	now := time.Now()
	for sub := range ch.subs {
		if !sub.waitKey || ch.key == nil {
			continue
		}
		select {
		case sub.q <- relayFrame{pkt: *ch.key, at: now}:
			sub.waitKey = false
			r.mets.lateJoins.Inc()
		default:
			// Still wedged; the eviction ladder keeps owning it.
		}
	}
	ch.mu.Unlock()
	r.mets.parked.Add(-1)
	r.mets.reclaims.Inc()
	r.mets.parkStall.ObserveDuration(stall)
	return ch, nil
}

// Parked reports whether the channel is in its post-publisher-drop grace
// window.
func (ch *Channel) Parked() bool {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.parked
}

// Name returns the channel's registered name.
func (ch *Channel) Name() string { return ch.name }

// Publish fans one frame packet out to every subscriber — the publisher
// session's Tap. The payload is copied at most once per frame (when a
// subscriber or the keyframe cache needs it), shared read-only from then
// on; pkt.SendUnixMicro is re-stamped per subscriber at its own socket
// write, but the index and flight ID ride through unchanged so every
// spectator's flight dump correlates with the publisher's.
//
// A subscriber whose queue is full is never waited on: its queue is
// flushed and it skips deltas until the next intra (drop-to-keyframe); if
// the queue overflows again with no reader progress since that flush —
// a stalled reader, not a slow one — it is disconnected.
func (ch *Channel) Publish(pkt FramePacket) {
	m := &ch.relay.mets
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.closed {
		return
	}
	if pkt.Keyenc || len(ch.subs) > 0 {
		pkt.Payload = append([]byte(nil), pkt.Payload...)
	}
	if pkt.Keyenc {
		k := pkt
		ch.key = &k
	}
	now := time.Now()
	for sub := range ch.subs {
		if sub.waitKey && !pkt.Keyenc {
			// Dropped to keyframe: deltas before the next intra are
			// undecodable for this reader, skip them outright.
			m.dropped.Inc()
			continue
		}
		select {
		case sub.q <- relayFrame{pkt: pkt, at: now}:
			sub.waitKey = false
			m.fanout.Inc()
		default:
			if sub.dropArmed && sub.consumed.Load() == sub.consumedAtDrop {
				// Rung 2: the queue overflowed again and the reader has
				// consumed nothing since the last flush — a stalled
				// socket, not a scheduling hiccup. Disconnect — its
				// writer sees the closed queue, sends Bye and hangs up.
				ch.dropLocked(sub)
				sub.evicted.Store(true)
				m.evicted.Inc()
				continue
			}
			// Rung 1: drop-to-keyframe. Flush everything queued (the
			// reader is behind by a full queue) and resume at the next
			// intra — or this one, if that's what overflowed.
			flushed := 0
		flush:
			for {
				select {
				case <-sub.q:
					flushed++
				default:
					break flush
				}
			}
			m.dropped.Add(int64(flushed))
			m.dropToKey.Inc()
			sub.dropArmed = true
			sub.consumedAtDrop = sub.consumed.Load()
			if pkt.Keyenc {
				// The overflowing frame is itself an intra: the queue was
				// just emptied, so there is room now.
				sub.q <- relayFrame{pkt: pkt, at: now}
				sub.waitKey = false
				m.fanout.Inc()
			} else {
				sub.waitKey = true
				m.dropped.Inc()
			}
		}
	}
}

// PublishFrame adapts Publish to the pipeline's encode tap
// (pipeline.PacketTap): the engine's server stage calls it with its pooled
// bitstream buffer, Publish copies what it keeps.
func (ch *Channel) PublishFrame(index int, payload []byte, key bool, roi frame.Rect) {
	ch.Publish(FramePacket{Index: uint32(index), Keyenc: key, RoI: roi, Payload: payload})
}

// Subscribe attaches a new subscriber. The cached keyframe (if any) is
// pre-queued so a late joiner presents a frame immediately; the live tail
// follows from the next published packet.
func (ch *Channel) Subscribe(name string) (*subscriber, error) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.closed {
		return nil, errChannelClosed
	}
	if len(ch.subs) >= ch.relay.maxSubs {
		return nil, errSubscriberCap
	}
	sub := &subscriber{
		ch:   ch,
		name: name,
		q:    make(chan relayFrame, ch.relay.queue),
	}
	if ch.key != nil {
		// Guaranteed room: the queue is fresh and depth >= 1.
		sub.q <- relayFrame{pkt: *ch.key, at: time.Now()}
		ch.relay.mets.lateJoins.Inc()
	}
	ch.subs[sub] = struct{}{}
	ch.subGauge.Add(1)
	ch.relay.mets.subscribers.Add(1)
	return sub, nil
}

// Accept returns the channel's cached stream geometry (version and clock
// fields zero — those are per-subscriber).
func (ch *Channel) Accept() Accept { return ch.accept }

// Subscribers returns the current subscriber count.
func (ch *Channel) Subscribers() int {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return len(ch.subs)
}

// dropLocked removes sub and closes its queue. Caller holds ch.mu; all
// queue closes happen here, under the lock, so Publish can never race a
// send against a close.
func (ch *Channel) dropLocked(sub *subscriber) {
	if _, ok := ch.subs[sub]; !ok {
		return
	}
	delete(ch.subs, sub)
	ch.subGauge.Add(-1)
	ch.relay.mets.subscribers.Add(-1)
	close(sub.q)
}

// detach removes a subscriber that is leaving on its own (client Bye, or a
// dead socket). Idempotent, and safe against a concurrent eviction.
func (ch *Channel) detach(sub *subscriber) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.dropLocked(sub)
}

// close ends the channel. Graceful (abandon false: publisher ran out of
// frames) lets subscriber writers drain their queued tail before the Bye;
// abandon true (server shutdown) makes them skip the tail and Bye at once.
// Idempotent — a publisher's deferred close after Relay.Shutdown is a
// no-op.
func (ch *Channel) close(abandon bool) {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return
	}
	ch.closed = true
	if ch.parkTimer != nil {
		ch.parkTimer.Stop()
		ch.parkTimer = nil
	}
	if ch.parked {
		// Shutdown while parked: the grace window ends with the channel.
		ch.parked = false
		ch.relay.mets.parked.Add(-1)
	}
	for sub := range ch.subs {
		if abandon {
			sub.abandon.Store(true)
		}
		ch.dropLocked(sub)
	}
	ch.key = nil
	ch.mu.Unlock()
	ch.relay.remove(ch)
	ch.relay.reg.Unregister("stream_channel_subscribers_" + metricLabel(ch.name))
}

// subscriber is one spectator's relay endpoint: a bounded frame queue plus
// the eviction-ladder state. waitKey is guarded by the channel mutex; the
// queue itself is the only shared path between Publish and the writer.
type subscriber struct {
	ch   *Channel
	name string
	q    chan relayFrame

	waitKey        bool   // under ch.mu: flushed, skipping deltas until an intra
	dropArmed      bool   // under ch.mu: at least one drop-to-keyframe happened
	consumedAtDrop uint64 // under ch.mu: consumed count at the last flush

	consumed atomic.Uint64 // frames the writer has taken off the queue
	abandon  atomic.Bool   // server shutdown: writer skips the queued tail
	evicted  atomic.Bool   // removed by the ladder's disconnect rung
}

// Consumed marks one frame taken off the queue by the subscriber's writer —
// the reader-progress signal the eviction ladder's disconnect rung keys
// off: a queue that overflows twice with no consumption in between means
// the reader is stalled, not merely slow.
func (s *subscriber) Consumed() { s.consumed.Add(1) }

// Frames returns the subscriber's receive queue. It is closed when the
// publisher ends, the server shuts down, or the eviction ladder
// disconnects this subscriber.
func (s *subscriber) Frames() <-chan relayFrame { return s.q }

// Evicted reports whether the slow-reader ladder disconnected this
// subscriber.
func (s *subscriber) Evicted() bool { return s.evicted.Load() }

// Abandoned reports whether the server is shutting down and the queued
// tail should be skipped.
func (s *subscriber) Abandoned() bool { return s.abandon.Load() }

// String labels the subscriber in logs.
func (s *subscriber) String() string {
	return fmt.Sprintf("%s@%s", s.name, s.ch.name)
}
