package stream

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gamestreamsr/internal/frame"
	"gamestreamsr/internal/telemetry"
)

// gatedSource serves nFrames frames with an intra every gop frames. Frame 0
// returns immediately; frame 1 blocks until release is closed, so a test
// can attach subscribers while the publisher's cached keyframe is the only
// frame out.
type gatedSource struct {
	nFrames int
	gop     int
	pace    time.Duration
	release chan struct{}
}

func (g *gatedSource) NextFrame(i int) ([]byte, bool, frame.Rect, error) {
	if i >= g.nFrames {
		return nil, false, frame.Rect{}, io.EOF
	}
	if i == 1 {
		<-g.release
	}
	if g.pace > 0 && i > 0 {
		// Frame-rate pacing: an unpaced burst would overflow every
		// subscriber queue before any writer goroutine gets scheduled,
		// evicting readers that are merely unlucky, not slow.
		time.Sleep(g.pace)
	}
	// Distinct payloads so relayed bytes are checkable per frame.
	return []byte{byte(i), byte(i >> 8), 0xab}, i%g.gop == 0, frame.Rect{W: 8, H: 8}, nil
}

// publishClient dials addr and opens a publisher session on channel ch,
// returning the connected client. The caller drains frames.
func publishClient(t *testing.T, addr, ch string) (*Client, net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	if _, err := c.Handshake(Hello{Device: "pub", RoIWindow: 8, Scale: 2, Version: ProtocolVersion, Channel: ch}); err != nil {
		conn.Close()
		t.Fatal(err)
	}
	return c, conn
}

// spectateClient dials addr and attaches to channel ch as a spectator.
func spectateClient(t *testing.T, addr, ch string) (*Client, net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	if _, err := c.Subscribe(Subscribe{Channel: ch, Device: "spec"}); err != nil {
		conn.Close()
		t.Fatal(err)
	}
	return c, conn
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRelayFanout: one publisher, three spectators attached before the
// stream body flows. Every spectator must receive the identical encoded
// frames — same indices, payload bytes, keyframe flags and flight IDs as
// the publisher's copies — without any re-encode.
func TestRelayFanout(t *testing.T) {
	const nFrames = 12
	src := &gatedSource{nFrames: nFrames, gop: 4, release: make(chan struct{})}
	reg := telemetry.NewRegistry()
	srv := &MultiServer{
		Accept:       Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		Metrics:      reg,
		FlightFrames: 32,
		NewSource:    func(Hello) (FrameSource, error) { return src, nil },
	}
	addr, done := startMulti(t, srv)
	defer func() {
		srv.Shutdown(context.Background())
		<-done
	}()

	pub, pubConn := publishClient(t, addr, "arena")
	defer pubConn.Close()

	type recv struct {
		pkts []FramePacket
		err  error
	}
	const nSpecs = 3
	results := make([]recv, nSpecs)
	var wg sync.WaitGroup
	for s := 0; s < nSpecs; s++ {
		c, conn := spectateClient(t, addr, "arena")
		defer conn.Close()
		wg.Add(1)
		go func(s int, c *Client) {
			defer wg.Done()
			for {
				pkt, err := c.RecvFrame()
				if err == io.EOF {
					return
				}
				if err != nil {
					results[s].err = err
					return
				}
				results[s].pkts = append(results[s].pkts, pkt)
			}
		}(s, c)
	}
	waitFor(t, "spectators attached", func() bool { return srv.SubscriberCount() == nSpecs })
	close(src.release)

	var pubPkts []FramePacket
	for {
		pkt, err := pub.RecvFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pubPkts = append(pubPkts, pkt)
	}
	wg.Wait()
	if len(pubPkts) != nFrames {
		t.Fatalf("publisher got %d frames, want %d", len(pubPkts), nFrames)
	}
	for s, r := range results {
		if r.err != nil {
			t.Fatalf("spectator %d: %v", s, r.err)
		}
		if len(r.pkts) != nFrames {
			t.Fatalf("spectator %d got %d frames, want %d", s, len(r.pkts), nFrames)
		}
		for i, pkt := range r.pkts {
			want := pubPkts[i]
			if pkt.Index != want.Index || pkt.Keyenc != want.Keyenc ||
				pkt.FlightID != want.FlightID || string(pkt.Payload) != string(want.Payload) {
				t.Fatalf("spectator %d frame %d = %+v, want publisher's %+v", s, i, pkt, want)
			}
		}
	}

	s := reg.Snapshot()
	if got := s.Counter("stream_subscribers_accepted_total"); got != nSpecs {
		t.Errorf("subscribers_accepted_total = %d, want %d", got, nSpecs)
	}
	// Each spectator joined after frame 0 was cached: 3 late joins served
	// from the keyframe cache, then 11 live frames each.
	if got := s.Counter("stream_relay_late_joins_total"); got != nSpecs {
		t.Errorf("late_joins_total = %d, want %d", got, nSpecs)
	}
	if got := s.Counter("stream_relay_frames_fanout_total"); got != nSpecs*(nFrames-1) {
		t.Errorf("fanout_total = %d, want %d", got, nSpecs*(nFrames-1))
	}
	if got := s.Counter("stream_relay_subscribers_evicted_total"); got != 0 {
		t.Errorf("evicted_total = %d, want 0", got)
	}
}

// TestRelayLateJoinKeyframe: a spectator joining mid-GOP must immediately
// receive the cached intra frame — not wait for the next GOP boundary —
// and then pick up the live tail.
func TestRelayLateJoinKeyframe(t *testing.T) {
	const nFrames = 8
	src := &gatedSource{nFrames: nFrames, gop: nFrames, release: make(chan struct{})}
	reg := telemetry.NewRegistry()
	srv := &MultiServer{
		Accept:    Accept{Width: 32, Height: 32, GOPSize: nFrames, QStep: 6},
		Metrics:   reg,
		NewSource: func(Hello) (FrameSource, error) { return src, nil },
	}
	addr, done := startMulti(t, srv)
	defer func() {
		srv.Shutdown(context.Background())
		<-done
	}()

	pub, pubConn := publishClient(t, addr, "arena")
	defer pubConn.Close()
	// Drain frame 0 (the GOP's only intra), then hold the stream gated: any
	// frame a late joiner sees now can only come from the keyframe cache.
	if pkt, err := pub.RecvFrame(); err != nil || !pkt.Keyenc {
		t.Fatalf("publisher frame 0 = %+v, %v", pkt, err)
	}

	spec, specConn := spectateClient(t, addr, "arena")
	defer specConn.Close()
	first, err := spec.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !first.Keyenc || first.Index != 0 {
		t.Fatalf("late joiner's first frame = %+v, want the cached intra (index 0)", first)
	}

	close(src.release)
	got := []FramePacket{first}
	for {
		pkt, err := spec.RecvFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pkt)
	}
	for {
		if _, err := pub.RecvFrame(); err != nil {
			break
		}
	}
	// Cached intra plus the whole live tail (frames 1..7): no GOP wait, no
	// gap in the delta chain after the intra.
	if len(got) != nFrames {
		t.Fatalf("late joiner got %d frames, want %d", len(got), nFrames)
	}
	for i, pkt := range got {
		if int(pkt.Index) != i {
			t.Fatalf("late joiner frame %d has index %d, want %d", i, pkt.Index, i)
		}
	}
	if got := reg.Snapshot().Counter("stream_relay_late_joins_total"); got != 1 {
		t.Errorf("late_joins_total = %d, want 1", got)
	}
}

// TestRelaySlowReaderEviction drives the two-rung ladder deterministically
// at the relay level: a subscriber that consumes nothing is first dropped
// to the next keyframe, then — when its queue overflows again with zero
// reader progress — disconnected, while a healthy subscriber on the same
// channel receives every decodable frame. (The socket-level variant, where
// a stalled TCP reader backs up the writer, runs in the gssr-server
// fan-out e2e with payloads large enough to fill kernel buffers.)
func TestRelaySlowReaderEviction(t *testing.T) {
	const (
		nFrames = 64
		gop     = 4
		queue   = 4
	)
	reg := telemetry.NewRegistry()
	relay := NewRelay(reg, 8, queue)
	ch, err := relay.Create("arena", Accept{Width: 32, Height: 32, GOPSize: gop, QStep: 6})
	if err != nil {
		t.Fatal(err)
	}

	healthy, err := ch.Subscribe("healthy")
	if err != nil {
		t.Fatal(err)
	}
	stalled, err := ch.Subscribe("stalled")
	if err != nil {
		t.Fatal(err)
	}

	// The healthy reader drains its queue like the subscriber writer does:
	// receive, mark consumed.
	healthyGot := make(chan int, 1)
	go func() {
		n := 0
		for range healthy.Frames() {
			healthy.Consumed()
			n++
		}
		healthyGot <- n
	}()

	published := 0
	for i := 0; i < nFrames; i++ {
		ch.Publish(FramePacket{Index: uint32(i), Keyenc: i%gop == 0, Payload: []byte{byte(i)}})
		published++
		if i%gop == gop-1 {
			// GOP-boundary breather so the healthy drainer keeps up; the
			// stalled subscriber's queue state is unaffected by time.
			time.Sleep(time.Millisecond)
		}
	}
	if !stalled.Evicted() {
		t.Fatal("stalled subscriber not evicted after sustained zero progress")
	}
	if healthy.Evicted() {
		t.Fatal("healthy subscriber evicted")
	}
	if got := ch.Subscribers(); got != 1 {
		t.Fatalf("%d subscribers left, want 1 (the healthy one)", got)
	}
	ch.close(false)
	if got := <-healthyGot; got != nFrames {
		t.Fatalf("healthy subscriber got %d frames, want %d", got, nFrames)
	}
	// The eviction path is visible on /metrics: rung 1 then rung 2.
	s := reg.Snapshot()
	if got := s.Counter("stream_relay_subscribers_evicted_total"); got != 1 {
		t.Errorf("evicted_total = %d, want 1 (the stalled reader)", got)
	}
	if got := s.Counter("stream_relay_drop_to_key_total"); got < 1 {
		t.Errorf("drop_to_key_total = %d, want >= 1 (rung 1 precedes eviction)", got)
	}
	if got := s.Counter("stream_relay_dropped_frames_total"); got < 1 {
		t.Errorf("dropped_frames_total = %d, want >= 1", got)
	}
	// A send on the closed queue would have panicked above; reaching here
	// means Publish after eviction skipped the dead subscriber safely.
}

// TestRelayRejects covers the subscriber-side protocol rejects: unknown
// channel, subscriber cap, and a second publisher claiming a taken channel.
func TestRelayRejects(t *testing.T) {
	release := make(chan struct{})
	srv := &MultiServer{
		Accept:         Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		MaxSubscribers: 1,
		NewSource: func(Hello) (FrameSource, error) {
			return frameFunc(func(i int) ([]byte, bool, frame.Rect, error) {
				if i == 0 {
					return []byte{0}, true, frame.Rect{}, nil
				}
				<-release
				return nil, false, frame.Rect{}, io.EOF
			}), nil
		},
	}
	addr, done := startMulti(t, srv)
	defer func() {
		close(release) // unwedge the held-open publisher source first
		srv.Shutdown(context.Background())
		<-done
	}()

	// No publisher yet: unknown channel.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = NewClient(conn).Subscribe(Subscribe{Channel: "nobody", Device: "s"})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Code != RejectUnknownChannel {
		t.Fatalf("subscribe to unknown channel = %v, want unknown-channel reject", err)
	}

	_, pubConn := publishClient(t, addr, "arena")
	defer pubConn.Close()
	waitFor(t, "channel registered", func() bool { return srv.relay.Lookup("arena") != nil })

	// Second publisher on the same name is turned away.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	_, err = NewClient(conn2).Handshake(Hello{Device: "pub2", RoIWindow: 8, Scale: 2, Version: ProtocolVersion, Channel: "arena"})
	if !errors.As(err, &rej) || rej.Code != RejectChannelTaken {
		t.Fatalf("second publisher = %v, want channel-taken reject", err)
	}

	// One subscriber fits, the second exceeds MaxSubscribers.
	_, specConn := spectateClient(t, addr, "arena")
	defer specConn.Close()
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	_, err = NewClient(conn3).Subscribe(Subscribe{Channel: "arena", Device: "s2"})
	if !errors.As(err, &rej) || rej.Code != RejectCapacity {
		t.Fatalf("over-cap subscribe = %v, want capacity reject", err)
	}
	if !strings.Contains(rej.Reason, "subscriber limit") {
		t.Errorf("reject reason = %q, want the subscriber limit named", rej.Reason)
	}
}

// TestMultiServerShutdownWithSubscribers: Shutdown with a publisher and
// spectators mid-stream must deliver a clean Bye to every spectator and
// drain all relay goroutines — no send on a closed queue, no leaked
// writers. Run under -race in CI.
func TestMultiServerShutdownWithSubscribers(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	reg := telemetry.NewRegistry()
	srv := &MultiServer{
		Accept:  Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		Metrics: reg,
		NewSource: func(Hello) (FrameSource, error) {
			return frameFunc(func(i int) ([]byte, bool, frame.Rect, error) {
				// An endless paced stream: shutdown arrives mid-flow.
				select {
				case <-release:
					return nil, false, frame.Rect{}, io.EOF
				case <-time.After(time.Millisecond):
				}
				return []byte{byte(i)}, i%4 == 0, frame.Rect{}, nil
			}), nil
		},
	}
	addr, done := startMulti(t, srv)

	_, pubConn := publishClient(t, addr, "arena")
	defer pubConn.Close()

	const nSpecs = 3
	cleanByes := make(chan error, nSpecs)
	for s := 0; s < nSpecs; s++ {
		c, conn := spectateClient(t, addr, "arena")
		defer conn.Close()
		go func(c *Client) {
			for {
				_, err := c.RecvFrame()
				if err != nil {
					// A clean protocol close surfaces as io.EOF (Bye);
					// anything else is an abrupt disconnect.
					cleanByes <- err
					return
				}
			}
		}(c)
	}
	waitFor(t, "spectators attached", func() bool { return srv.SubscriberCount() == nSpecs })
	waitFor(t, "fan-out flowing", func() bool {
		return reg.Snapshot().Counter("stream_relay_frames_fanout_total") > 2*nSpecs
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if err := <-done; !errors.Is(err, errServerClosed) {
		t.Errorf("Serve returned %v, want server-closed", err)
	}
	for s := 0; s < nSpecs; s++ {
		select {
		case err := <-cleanByes:
			if err != io.EOF {
				t.Errorf("spectator ended with %v, want io.EOF (clean Bye)", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("spectator never saw the stream end")
		}
	}
	if got := srv.SubscriberCount(); got != 0 {
		t.Errorf("%d subscribers left after shutdown", got)
	}
	if got := reg.Snapshot().Gauge("stream_subscribers_active"); got != 0 {
		t.Errorf("subscribers_active = %d after shutdown, want 0", got)
	}
}

// TestRelayChannelGaugeLifecycle: the per-channel subscriber gauge exists
// while the channel is live and is unregistered when it closes, so channel
// churn cannot grow /metrics without bound.
func TestRelayChannelGaugeLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	relay := NewRelay(reg, 4, 4)
	ch, err := relay.Create("lobby", Accept{Width: 8, Height: 8, GOPSize: 2, QStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ch.Subscribe("watcher")
	if err != nil {
		t.Fatal(err)
	}
	name := "stream_channel_subscribers_" + metricLabel("lobby")
	if got := reg.Snapshot().Gauge(name); got != 1 {
		t.Fatalf("%s = %d, want 1", name, got)
	}
	if got := reg.Snapshot().Gauge("stream_relay_channels_active"); got != 1 {
		t.Fatalf("channels_active = %d, want 1", got)
	}
	ch.close(false)
	if _, ok := <-sub.Frames(); ok {
		t.Error("subscriber queue still open after channel close")
	}
	if relay.Lookup("lobby") != nil {
		t.Error("closed channel still resolvable")
	}
	s := reg.Snapshot()
	if got := s.Gauge(name); got != 0 {
		t.Errorf("%s = %d after close, want unregistered (0)", name, got)
	}
	if got := s.Gauge("stream_relay_channels_active"); got != 0 {
		t.Errorf("channels_active = %d after close, want 0", got)
	}
	if got := s.Gauge("stream_subscribers_active"); got != 0 {
		t.Errorf("subscribers_active = %d after close, want 0", got)
	}
	// close is idempotent: a publisher's deferred close after Shutdown.
	ch.close(true)
}
