package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gamestreamsr/internal/diag"
	"gamestreamsr/internal/diag/logx"
	"gamestreamsr/internal/frame"
	"gamestreamsr/internal/frametrace"
	"gamestreamsr/internal/parallel"
	"gamestreamsr/internal/telemetry"
)

// SourceFactory creates a fresh FrameSource per session: each client gets
// its own encoder/detector state (stateful codecs cannot be shared).
type SourceFactory func(hello Hello) (FrameSource, error)

// SchedAware is an optional FrameSource capability: sources that run
// parallel kernels (render, detect, encode) implement it to receive the
// session's scheduler client, so their work is dispatched by the session's
// weight/priority instead of the default client's.
type SchedAware interface {
	SetSched(c *parallel.Client)
}

// Shedder is an optional FrameSource capability: sources that can degrade
// quality implement it to receive shed-ladder level changes. Levels are the
// Shed* constants; the source applies everything up to and including the
// given level (0 restores full quality).
type Shedder interface {
	SetShedLevel(level int)
}

// Shed-ladder levels, mildest first. Each level includes the ones below it.
const (
	// ShedNone: full quality.
	ShedNone = 0
	// ShedRoIShrink: halve the RoI window, cutting the NPU-path work ~4×
	// while keeping SR on the most salient region.
	ShedRoIShrink = 1
	// ShedBilinearOnly: drop RoI detection and SR entirely — the client
	// falls back to its GPU bilinear path (the paper's SOTA baseline).
	ShedBilinearOnly = 2
	// ShedDemoted: additionally demote the session's scheduler client to
	// Background priority, so its remaining work only uses worker cycles
	// the on-budget sessions leave idle.
	ShedDemoted = 3
)

// ShedPolicy drives the per-session shed ladder from the session's
// deadline-miss streak: EscalateStreak consecutive misses climb one rung,
// RecoverFrames consecutive on-budget frames descend one.
type ShedPolicy struct {
	// EscalateStreak is the consecutive-miss count that triggers a climb
	// (default 8 — half a 60 FPS GOP of sustained misses, long enough to
	// ignore one-frame spikes).
	EscalateStreak int
	// RecoverFrames is the consecutive on-budget frame count that triggers
	// a descent (default 240 — recovery is deliberately much slower than
	// escalation so the ladder doesn't oscillate at the capacity edge).
	RecoverFrames int
	// MaxLevel caps the ladder (default ShedDemoted).
	MaxLevel int
}

func (p ShedPolicy) withDefaults() ShedPolicy {
	if p.EscalateStreak <= 0 {
		p.EscalateStreak = 8
	}
	if p.RecoverFrames <= 0 {
		p.RecoverFrames = 240
	}
	if p.MaxLevel <= 0 || p.MaxLevel > ShedDemoted {
		p.MaxLevel = ShedDemoted
	}
	return p
}

// AdmissionPolicy keys new-session admission off the live sessions' SLO
// state: a session is admitted only while the aggregate windowed p99 frame
// latency leaves at least MinSlack of headroom against the deadline.
// Requires FlightFrames > 0 (the per-session rings are the latency window);
// without recorders the policy admits everything up to MaxSessions.
type AdmissionPolicy struct {
	// MinSlack is the minimum (deadline − aggregate p99) required to admit
	// (default 0: reject once p99 slack goes negative, i.e. the fleet is
	// already missing deadlines at the tail).
	MinSlack time.Duration
	// MinSamples is the minimum number of delivered frames across the live
	// windows before the policy may reject (default 32) — a cold server
	// admits; rejection needs evidence.
	MinSamples int
}

func (p AdmissionPolicy) withDefaults() AdmissionPolicy {
	if p.MinSamples <= 0 {
		p.MinSamples = 32
	}
	return p
}

// MultiServer accepts and serves many concurrent client sessions — the
// shape a real cloud-gaming host has (the paper's Sunshine hosts one stream
// per machine, GeForce-Now-class services multiplex many). With Sched,
// Admission and Shed configured it is also the control plane: per-session
// scheduler clients, SLO-keyed admission control and a per-session shed
// ladder (see DESIGN.md §12).
//
// Sessions come in two kinds (DESIGN.md §14): a connection opening with a
// Hello is a publisher — it owns a game source and encode pipeline, and
// may register the stream under a channel name — while a connection
// opening with a Subscribe is a spectator attached to an existing
// channel's encoded GOP stream through the relay, costing no extra encode
// work. Spectators have their own cap (MaxSubscribers per channel), their
// own Background-priority scheduler clients, and bounded send queues with
// slow-reader eviction, so they never head-of-line-block the publisher or
// count against player admission.
type MultiServer struct {
	// Accept is the stream geometry announced to every client.
	Accept Accept
	// NewSource builds the per-session frame source.
	NewSource SourceFactory
	// MaxFrames bounds each session (0 = until source EOF).
	MaxFrames int
	// MaxSessions bounds concurrent sessions (default 16); excess
	// connections receive a Reject(capacity) and are closed.
	MaxSessions int
	// OnInput receives input events from any session, tagged by remote
	// address.
	OnInput func(remote string, in InputPacket)
	// Metrics, when non-nil, receives server telemetry: accepted, rejected
	// and active session counts, plus the per-session frame/byte/latency
	// metrics (see ServerOptions.Metrics). Nil is a no-op.
	Metrics *telemetry.Registry
	// FlightFrames, when > 0, attaches a flight recorder of that many
	// frames to every session (see ServerOptions.Flight). The server keeps
	// the recorders of live sessions plus the most recently finished ones,
	// and WriteFlight merges their windows into one Chrome trace (one
	// Perfetto process per session) — the MultiServer itself is the
	// telemetry.FlightDumper behind /debug/flight. Session streak gauges
	// are aggregated max-across-sessions through a frametrace.StreakSet.
	FlightFrames int
	// FlightRetain overrides how many finished sessions' recorders stay
	// dumpable (default 4). Benchmarks that read every session's window
	// after the run raise it.
	FlightRetain int
	// Deadline overrides the per-frame budget the session recorders (and
	// therefore admission and shedding) account against (default
	// frametrace.DefaultDeadline, the 60 FPS frame time).
	Deadline time.Duration
	// Sched, when non-nil, gives every session its own scheduler client
	// (weight 1, Normal priority), threaded into SchedAware sources — the
	// isolation that makes shedding's priority demotion meaningful.
	Sched *parallel.Scheduler
	// Admission, when non-nil, enables SLO-keyed admission control.
	Admission *AdmissionPolicy
	// Shed, when non-nil, enables the per-session shed ladder; it needs
	// FlightFrames > 0 (the recorder's miss streak is the trigger signal).
	Shed *ShedPolicy
	// MaxSubscribers bounds spectators per publish channel (default 16);
	// excess Subscribes receive a Reject(capacity).
	MaxSubscribers int
	// SubscriberQueue is the per-subscriber send-queue depth (default
	// DefaultSubscriberQueue). A reader that falls a full queue behind is
	// dropped to the next keyframe; one that stays stalled for a further
	// GOP is disconnected.
	SubscriberQueue int
	// IdleTimeout is the v4 read-liveness bound: a session (publisher or
	// spectator) that sends nothing — not even a heartbeat — for this long
	// is reaped as dead. The reaper only fires on v4+ sessions (older
	// clients never ping); slow-but-alive peers stay on the shed and
	// eviction ladders. 0 picks DefaultIdleTimeout; negative disables.
	IdleTimeout time.Duration
	// ParkGrace is how long a channel whose publisher dropped uncleanly
	// stays parked awaiting a resume-token reclaim before it closes and
	// its spectators get their Bye. 0 picks DefaultParkGrace; negative
	// disables parking.
	ParkGrace time.Duration
	// ControlTimeout bounds small control writes (rejects, byes, pongs);
	// 0 picks DefaultControlTimeout.
	ControlTimeout time.Duration
	// Log receives the server's structured log lines (session lifecycle,
	// shed transitions, rejects, reaps), each tagged with session / frame /
	// flight fields. Nil uses logx.Default() — stderr, like the stdlib log
	// package this replaces.
	Log *logx.Logger
	// Diag, when non-nil, is the SLO watchdog: sustained deadline-miss
	// streaks, shed-ladder escalations, admission rejects and session reaps
	// each ask it to freeze a capture bundle (profile ring + goroutine dump
	// + flight trace + log ring); its cooldown turns those asks into at most
	// one bundle per incident.
	Diag *diag.Diag

	mu       sync.Mutex
	sessions map[net.Conn]*session
	pending  map[net.Conn]struct{} // accepted, first message not yet read
	relay    *Relay
	flights  []*sessionFlight
	streaks  *frametrace.StreakSet
	resumes  map[string]string // resume token -> original session identity
	resumeQ  []string          // token issue order, for cap eviction
	listener net.Listener
	closed   bool
	serveWG  sync.WaitGroup
	ctrs     serverCounters
}

// maxResumeRecords caps the token -> identity correlation table; the
// oldest records are evicted first (an evicted token can no longer rename
// a reconnecting session, but channel reclaim is unaffected — the parked
// channel itself holds the authoritative token).
const maxResumeRecords = 1024

// recordResume remembers which session identity a resume token belongs to.
func (s *MultiServer) recordResume(token, identity string) {
	if token == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.resumes == nil {
		s.resumes = make(map[string]string)
	}
	if _, ok := s.resumes[token]; !ok {
		s.resumeQ = append(s.resumeQ, token)
	}
	s.resumes[token] = identity
	for len(s.resumeQ) > maxResumeRecords {
		delete(s.resumes, s.resumeQ[0])
		s.resumeQ = s.resumeQ[1:]
	}
}

// resumeIdentity resolves a replayed resume token to the identity of the
// session that was issued it, correlating a reconnecting client's flight
// records and per-session metrics across connections.
func (s *MultiServer) resumeIdentity(token string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.resumes[token]
	return id, ok
}

// idleTimeout resolves the configured read-liveness bound (0 = disabled).
func (s *MultiServer) idleTimeout() time.Duration {
	if s.IdleTimeout < 0 {
		return 0
	}
	if s.IdleTimeout == 0 {
		return DefaultIdleTimeout
	}
	return s.IdleTimeout
}

// parkGrace resolves the configured park window (0 = disabled).
func (s *MultiServer) parkGrace() time.Duration {
	if s.ParkGrace < 0 {
		return 0
	}
	if s.ParkGrace == 0 {
		return DefaultParkGrace
	}
	return s.ParkGrace
}

// serverCounters holds the accept-path telemetry handles, resolved once in
// Serve so per-connection work never touches the registry map more than a
// handful of times. All fields are nil-safe no-ops without a registry.
type serverCounters struct {
	accepted, rejected         *telemetry.Counter
	rejectedCap, rejectedBusy  *telemetry.Counter
	subsAccepted, subsRejected *telemetry.Counter
	active                     *telemetry.Gauge
}

// session is the per-connection control-plane state.
type session struct {
	remote string
	rec    *frametrace.Recorder
	client *parallel.Client
	shed   *shedSource
}

// sessionFlight pairs one session's flight recorder with its identity.
// channel/spectator carry the relay identity into flight dumps (so a
// merged trace names which channel a track was publishing or watching)
// and let admission skip spectator recorders — a stalled spectator's
// frame ages are its own eviction ladder's business, not a reason to turn
// players away.
type sessionFlight struct {
	remote    string
	channel   string
	spectator bool
	rec       *frametrace.Recorder
	live      bool
}

// retiredFlights bounds how many finished sessions' recorders stay
// dumpable after their connection closes (unless FlightRetain raises it).
const retiredFlights = 4

// errServerClosed is returned by Serve after Shutdown.
var errServerClosed = errors.New("stream: server closed")

// Serve accepts connections from l until the listener fails or Shutdown is
// called. It blocks; run it in a goroutine and use Shutdown to stop. Each
// connection's first message decides what it is: a Hello opens a
// (publisher) game session, a Subscribe attaches a spectator to an
// existing publish channel.
func (s *MultiServer) Serve(l net.Listener) error {
	if s.NewSource == nil {
		return errors.New("stream: MultiServer needs a source factory")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errServerClosed
	}
	s.listener = l
	if s.streaks == nil && s.Metrics != nil && s.FlightFrames > 0 {
		s.streaks = frametrace.NewStreakSet(s.Metrics)
	}
	if s.relay == nil {
		s.relay = NewRelay(s.Metrics, s.MaxSubscribers, s.SubscriberQueue)
		s.relay.SetParkGrace(s.parkGrace())
	}
	if s.sessions == nil {
		s.sessions = make(map[net.Conn]*session)
	}
	if s.pending == nil {
		s.pending = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()
	s.Metrics.GaugeFunc("stream_shed_level_max", s.maxShedLevel)
	s.ctrs = serverCounters{
		accepted:     s.Metrics.Counter("stream_sessions_accepted_total"),
		rejected:     s.Metrics.Counter("stream_sessions_rejected_total"),
		rejectedCap:  s.Metrics.Counter("stream_sessions_rejected_capacity_total"),
		rejectedBusy: s.Metrics.Counter("stream_sessions_rejected_busy_total"),
		subsAccepted: s.Metrics.Counter("stream_subscribers_accepted_total"),
		subsRejected: s.Metrics.Counter("stream_subscribers_rejected_total"),
		active:       s.Metrics.Gauge("stream_sessions_active"),
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return errServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return errServerClosed
		}
		// The conn is tracked as pending until its first message is read,
		// so Shutdown can unblock a handshake that never arrives.
		s.pending[conn] = struct{}{}
		s.mu.Unlock()
		s.serveWG.Add(1)
		go func(conn net.Conn) {
			defer s.serveWG.Done()
			s.handleConn(conn)
		}(conn)
	}
}

// handleConn reads a connection's first message and dispatches: Hello →
// publisher session, Subscribe → spectator session, anything else → close.
func (s *MultiServer) handleConn(conn net.Conn) {
	msg, err := ReadMsg(conn)
	tFirst := time.Now() // T1 of the client's Cristian offset estimate
	s.mu.Lock()
	delete(s.pending, conn)
	closed := s.closed
	s.mu.Unlock()
	if err != nil || closed {
		conn.Close()
		return
	}
	switch msg.Type {
	case MsgHello:
		s.servePublisher(conn, *msg.Hello, tFirst)
	case MsgSubscribe:
		s.serveSubscriber(conn, *msg.Subscribe, tFirst)
	default:
		s.Log.Warn("stream: bad opening message, want hello or subscribe",
			"remote", conn.RemoteAddr().String(), "type", msg.Type)
		conn.Close()
	}
}

// busyRetryAfter is the server-suggested redial delay carried in v4
// capacity/busy rejects: long enough for a session to drain or the SLO
// window to recover, short enough that a waiting client feels responsive.
const busyRetryAfter = 2 * time.Second

// rejectConn tells the client why it is being refused, then closes. The
// caller has already read the client's opening message, so the reject is
// the only unread data in flight when the connection closes. The write is
// bounded (controlWrite) so a peer that never reads cannot wedge the
// goroutine; ver gates the v4 retry-after field — a pre-v4 parser treats
// trailing bytes as a protocol error.
func (s *MultiServer) rejectConn(conn net.Conn, ver int, rej Reject) {
	defer conn.Close()
	if ver < ProtocolV4 {
		rej.RetryAfterMs = 0
	}
	controlWrite(conn, s.Metrics, s.Log, s.ControlTimeout, conn.RemoteAddr().String(), "reject", func() error {
		return WriteReject(conn, rej)
	})
}

// servePublisher runs a game (publisher) session whose Hello has been
// read: session cap, admission control, optional channel registration (or
// a resume-token reclaim of a parked one), then the frame loop with the
// relay tap attached. A v4 publisher that drops uncleanly parks its
// channel for the grace window instead of closing it.
func (s *MultiServer) servePublisher(conn net.Conn, hello Hello, tHello time.Time) {
	max := s.MaxSessions
	if max <= 0 {
		max = 16
	}
	sess := &session{remote: conn.RemoteAddr().String()}
	ver := NegotiateVersion(hello.Version)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	overCap := len(s.sessions) >= max
	if !overCap {
		s.sessions[conn] = sess
	}
	s.mu.Unlock()
	if overCap {
		s.ctrs.rejected.Inc()
		s.ctrs.rejectedCap.Inc()
		s.Log.Warn("stream: rejecting session: capacity", "session", sess.remote, "limit", max)
		s.rejectConn(conn, ver, Reject{
			Code:         RejectCapacity,
			Reason:       fmt.Sprintf("session limit %d reached", max),
			RetryAfterMs: uint32(busyRetryAfter.Milliseconds()),
		})
		return
	}
	unregister := func() {
		s.mu.Lock()
		delete(s.sessions, conn)
		s.mu.Unlock()
	}
	if s.Admission != nil {
		if p99, samples, deadline, ok := s.admit(); !ok {
			unregister()
			s.ctrs.rejected.Inc()
			s.ctrs.rejectedBusy.Inc()
			s.Log.Warn("stream: rejecting session: no SLO headroom",
				"session", sess.remote, "p99", p99, "samples", samples, "deadline", deadline)
			// An admission reject means the fleet is already missing its tail
			// SLO — exactly the moment a postmortem bundle is worth freezing.
			s.Diag.Trigger("admission_reject",
				"session", sess.remote, "p99", p99, "samples", samples, "deadline", deadline)
			s.rejectConn(conn, ver, Reject{
				Code:         RejectBusy,
				Reason:       fmt.Sprintf("no SLO headroom: p99 %v", p99.Round(time.Microsecond)),
				RetryAfterMs: uint32(busyRetryAfter.Milliseconds()),
			})
			return
		}
	}
	// v4 sessions get a resume token: a reconnecting client replays it to
	// keep its identity (flight records, per-session metrics) and to
	// reclaim a parked channel. A replayed token is re-issued unchanged so
	// the identity stays stable across any number of drops.
	var token string
	identity := sess.remote
	if ver >= ProtocolV4 {
		token = hello.ResumeToken
		if token != "" {
			if orig, ok := s.resumeIdentity(token); ok {
				identity = orig
				s.Log.Info("stream: session resumed", "remote", sess.remote, "session", identity)
			}
		} else {
			token = newResumeToken()
		}
		s.recordResume(token, identity)
	}
	// A hello naming a channel registers this session as its publisher.
	// With a resume token, a parked channel is reclaimed — spectators ride
	// through — otherwise the name must be free.
	var ch *Channel
	if hello.Channel != "" {
		resumed := false
		if hello.ResumeToken != "" && ver >= ProtocolV4 {
			if got, err := s.relay.Reclaim(hello.Channel, hello.ResumeToken); err == nil {
				ch = got
				resumed = true
				if o := ch.Origin(); o != "" {
					identity = o
				}
			}
		}
		if ch == nil {
			var err error
			ch, err = s.relay.Create(hello.Channel, s.Accept)
			if err != nil {
				unregister()
				s.ctrs.rejected.Inc()
				s.Log.Warn("stream: rejecting session: channel unavailable",
					"session", sess.remote, "channel", hello.Channel, "err", err)
				s.rejectConn(conn, ver, Reject{
					Code:   RejectChannelTaken,
					Reason: fmt.Sprintf("channel %q already has a publisher", hello.Channel),
				})
				return
			}
		}
		ch.setResume(token, identity)
		if resumed {
			s.Log.Info("stream: parked channel reclaimed",
				"session", sess.remote, "channel", hello.Channel, "spectators", ch.Subscribers())
		} else {
			s.Log.Info("stream: publishing channel", "session", sess.remote, "channel", hello.Channel)
		}
	}
	if s.Sched != nil {
		sess.client = s.Sched.NewClient(parallel.ClientConfig{Name: sess.remote})
	}
	s.ctrs.accepted.Inc()
	s.ctrs.active.Add(1)
	var sessErr error
	defer func() {
		if ch != nil {
			// An unclean v4 publisher drop parks the channel for the grace
			// window — registry entry, cached keyframe and subscribers all
			// retained, awaiting a resume-token reclaim. A clean end (or a
			// pre-v4 client, which can never reclaim) drains gracefully:
			// subscribers get their queued tail, then a Bye.
			parked := false
			if sessErr != nil && ver >= ProtocolV4 {
				parked = ch.park()
			}
			if parked {
				s.Log.Warn("stream: channel parked after publisher dropped",
					"channel", ch.Name(), "session", sess.remote, "err", sessErr)
			} else {
				ch.close(false)
			}
		}
		conn.Close()
		unregister()
		s.ctrs.active.Add(-1)
	}()
	sessErr = s.serveSession(conn, sess, hello, tHello, ch, token, identity)
}

// admit computes the aggregate windowed p99 across live session recorders
// and compares its slack against the admission policy. Returns the p99,
// the sample count, the deadline accounted against, and the verdict.
func (s *MultiServer) admit() (p99 time.Duration, samples int, deadline time.Duration, ok bool) {
	pol := s.Admission.withDefaults()
	s.mu.Lock()
	recs := make([]*frametrace.Recorder, 0, len(s.flights))
	for _, f := range s.flights {
		// Spectator windows don't gate player admission: a stalled
		// spectator is the eviction ladder's problem, not evidence the
		// encode fleet is out of headroom.
		if f.live && !f.spectator {
			recs = append(recs, f.rec)
		}
	}
	s.mu.Unlock()
	var lats []time.Duration
	deadline = s.Deadline
	if deadline <= 0 {
		deadline = frametrace.DefaultDeadline
	}
	for _, rec := range recs {
		lats = rec.WindowLatencies(lats)
		if d := rec.Deadline(); d > 0 {
			deadline = d
		}
	}
	if len(lats) < pol.MinSamples {
		return 0, len(lats), deadline, true // cold server: no evidence to reject on
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 = lats[(len(lats)*99+99)/100-1]
	return p99, len(lats), deadline, deadline-p99 >= pol.MinSlack
}

// maxShedLevel reports the highest shed-ladder level among live sessions —
// the stream_shed_level_max gauge.
func (s *MultiServer) maxShedLevel() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max int64
	for _, sess := range s.sessions {
		if sess.shed == nil {
			continue
		}
		if v := sess.shed.Level(); int64(v) > max {
			max = int64(v)
		}
	}
	return max
}

// serveSession runs the accepted publisher's frame loop and returns its
// terminal error (nil on a clean end — source EOF or client Bye). identity
// is the stable session name for flight records and per-session metrics:
// normally the remote address, but a resumed session keeps the identity of
// the connection it resumed, so records correlate across reconnects.
func (s *MultiServer) serveSession(conn net.Conn, sess *session, hello Hello, tHello time.Time, ch *Channel, token, identity string) error {
	remote := sess.remote
	channel := ""
	if ch != nil {
		channel = ch.Name()
	}
	// Label this session's goroutine (and the read goroutine serveHello
	// spawns from it) so CPU profiles attribute frame production and sends
	// to the session identity. The goroutine is per-connection and exits
	// right after, so there is nothing to restore.
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("session", identity, "stage", "publish", "channel", channel)))
	rec := s.beginFlight(identity, channel, false)
	sess.rec = rec
	var src FrameSource
	var source FrameSource = deferredSource{get: func() FrameSource { return src }}
	if s.Shed != nil && rec != nil {
		shed := &shedSource{
			inner:       source,
			target:      func() Shedder { t, _ := src.(Shedder); return t },
			client:      sess.client,
			rec:         rec,
			pol:         s.Shed.withDefaults(),
			remote:      remote,
			log:         s.Log,
			diag:        s.Diag,
			escalations: s.Metrics.Counter("stream_shed_escalations_total"),
			recoveries:  s.Metrics.Counter("stream_shed_recoveries_total"),
		}
		sess.shed = shed
		source = shed
	}
	sink := &statsSink{metrics: s.Metrics, remote: identity, rec: rec, log: s.Log}
	opt := ServerOptions{
		Accept:         s.Accept,
		MaxFrames:      s.MaxFrames,
		Metrics:        s.Metrics,
		Flight:         rec,
		Remote:         remote,
		ResumeToken:    token,
		IdleTimeout:    s.idleTimeout(),
		ControlTimeout: s.ControlTimeout,
		Log:            s.Log,
		OnReap: func(idle time.Duration) {
			s.Diag.Trigger("session_reaped", "session", identity, "channel", channel, "idle", idle)
		},
		Source:  source,
		OnStats: sink.handle,
		OnInput: func(in InputPacket) {
			if s.OnInput != nil {
				s.OnInput(remote, in)
			}
		},
		Validate: func(h Hello) error {
			var err error
			src, err = s.NewSource(h)
			if err != nil {
				return err
			}
			if sa, ok := src.(SchedAware); ok && sess.client != nil {
				sa.SetSched(sess.client)
			}
			return nil
		},
	}
	if ch != nil {
		opt.Tap = ch.Publish
	}
	err := serveHello(conn, hello, tHello, opt) // per-session errors end that session only
	sink.close()
	if sess.client != nil {
		st := sess.client.Stats()
		if st.Jobs > 0 {
			s.Log.Info("stream: session scheduler stats", "session", remote,
				"jobs", st.Jobs, "chunks", st.Chunks, "stolen", st.Stolen,
				"queue_wait", st.StolenWait.Round(time.Microsecond))
		}
	}
	s.endFlight(identity)
	return err
}

// subscriberWriteTimeout bounds every socket write to a spectator. The
// queue's eviction ladder handles sustained slowness; the deadline only
// guards against a peer that stops reading entirely mid-frame.
const subscriberWriteTimeout = 10 * time.Second

// serveSubscriber runs a spectator session whose Subscribe has been read:
// attach to the channel (cached Accept + keyframe make the first frame
// decodable immediately), then relay the publisher's encoded frames until
// the subscriber leaves, falls too far behind, or the channel closes.
func (s *MultiServer) serveSubscriber(conn net.Conn, sub Subscribe, tSub time.Time) {
	remote := conn.RemoteAddr().String()
	ver := NegotiateVersion(sub.Version)
	var ch *Channel
	if s.relay != nil {
		ch = s.relay.Lookup(sub.Channel)
	}
	if ch == nil {
		s.ctrs.subsRejected.Inc()
		s.Log.Warn("stream: rejecting spectator: unknown channel", "session", remote, "channel", sub.Channel)
		s.rejectConn(conn, ver, Reject{Code: RejectUnknownChannel, Reason: fmt.Sprintf("no publisher on channel %q", sub.Channel)})
		return
	}
	subr, err := ch.Subscribe(remote)
	if err != nil {
		s.ctrs.subsRejected.Inc()
		s.Log.Warn("stream: rejecting spectator", "session", remote, "channel", sub.Channel, "err", err)
		rej := Reject{Code: RejectUnknownChannel, Reason: err.Error()}
		if errors.Is(err, errSubscriberCap) {
			rej.Code = RejectCapacity
			rej.RetryAfterMs = uint32(busyRetryAfter.Milliseconds())
		}
		s.rejectConn(conn, ver, rej)
		return
	}
	defer ch.detach(subr)
	acc := ch.Accept()
	if ver >= ProtocolV2 {
		acc.Version = ver
		acc.RecvUnixMicro = tSub.UnixMicro()
		acc.SendUnixMicro = time.Now().UnixMicro()
	} else {
		acc.Version, acc.RecvUnixMicro, acc.SendUnixMicro = 0, 0, 0
	}
	conn.SetWriteDeadline(time.Now().Add(subscriberWriteTimeout))
	if err := WriteAccept(conn, acc); err != nil {
		conn.Close()
		return
	}
	conn.SetWriteDeadline(time.Time{})
	s.ctrs.subsAccepted.Inc()
	s.Log.Info("stream: spectator attached", "session", remote, "channel", sub.Channel, "protocol", ver)
	// Label the writer goroutine (and the read goroutine spawned below) so
	// relay fan-out CPU shows up against the spectator's identity.
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("session", remote, "stage", "subscribe", "channel", sub.Channel)))
	var client *parallel.Client
	if s.Sched != nil {
		// Spectators only cost relay writes today, but registering them at
		// Background priority keeps any future per-subscriber work (e.g.
		// transcode rungs) strictly yield-only.
		client = s.Sched.NewClient(parallel.ClientConfig{Name: remote, Priority: parallel.Background})
	}
	_ = client
	rec := s.beginFlight(remote, sub.Channel, true)
	sink := &statsSink{metrics: s.Metrics, remote: remote, rec: rec, log: s.Log}
	defer func() {
		sink.close()
		s.endFlight(remote)
		conn.Close()
	}()

	// Read loop: spectators send no input that matters, but their Stats
	// backchannel, heartbeats and Bye do. Reading also detects disconnects
	// promptly, and on v4 sessions the idle deadline reaps a blackholed
	// spectator — the eviction ladder handles slow readers, the reaper
	// handles gone ones. sendMu serializes pong replies against the frame
	// writer (a message is two socket Writes that must not interleave).
	var clientBye atomic.Bool
	var sendMu sync.Mutex
	idle := s.idleTimeout()
	liveness := ver >= ProtocolV4 && idle > 0
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for {
			if liveness {
				conn.SetReadDeadline(time.Now().Add(idle))
			}
			msg, err := ReadMsg(conn)
			if err != nil {
				if liveness && errors.Is(err, os.ErrDeadlineExceeded) {
					s.Metrics.Counter("stream_sessions_reaped_total").Inc()
					s.Log.Warn("stream: reaping spectator: no traffic (not even a heartbeat)",
						"session", remote, "channel", sub.Channel, "idle", idle)
					s.Diag.Trigger("session_reaped", "session", remote, "channel", sub.Channel, "idle", idle)
					conn.Close()
				}
				return
			}
			switch msg.Type {
			case MsgStats:
				sink.handle(*msg.Stats)
			case MsgPing:
				s.Metrics.Counter("stream_pings_total").Inc()
				ping := *msg.Ping
				sendMu.Lock()
				werr := controlWrite(conn, s.Metrics, s.Log, s.ControlTimeout, remote, "pong", func() error {
					return WritePong(conn, PongPacket{Seq: ping.Seq, EchoUnixMicro: ping.SendUnixMicro})
				})
				sendMu.Unlock()
				if werr != nil {
					return
				}
			case MsgBye:
				clientBye.Store(true)
				return
			}
		}
	}()

	framesSent := s.Metrics.Counter("stream_subscriber_frames_sent_total")
	bytesSent := s.Metrics.Counter("stream_subscriber_bytes_sent_total")
	sendHist := s.Metrics.Histogram("stream_subscriber_send_seconds", telemetry.LatencyBuckets())
	queueHist := s.Metrics.Histogram("stream_subscriber_queue_seconds", telemetry.LatencyBuckets())
	var latScratch [2]frametrace.StageLatency
	var sendErr error
	for rf := range subr.Frames() {
		subr.Consumed()
		if subr.Abandoned() || clientBye.Load() {
			break
		}
		pkt := rf.pkt
		if ver >= ProtocolV2 {
			pkt.SendUnixMicro = time.Now().UnixMicro()
		} else {
			pkt.FlightID = 0
			pkt.SendUnixMicro = 0
		}
		// Adopt the publisher's flight ID so gssr trace -merge correlates a
		// spectator's copy of frame N with the publisher's encode of it.
		fid := rec.BeginFrameAt(pkt.FlightID, int(pkt.Index))
		qAge := time.Since(rf.at)
		rec.Span(fid, "queue", "queue", rf.at, qAge)
		queueHist.ObserveDuration(qAge)
		t0 := time.Now()
		sendMu.Lock()
		conn.SetWriteDeadline(t0.Add(subscriberWriteTimeout))
		sendErr = WriteFrame(conn, pkt)
		sendMu.Unlock()
		d := time.Since(t0)
		if sendErr != nil {
			break
		}
		rec.Span(fid, "send", "send", t0, d)
		latScratch[0] = frametrace.StageLatency{Name: "queue", D: qAge}
		latScratch[1] = frametrace.StageLatency{Name: "send", D: d}
		rec.ObserveDeadline(fid, latScratch[:])
		sendHist.ObserveDuration(d)
		framesSent.Inc()
		bytesSent.Add(int64(len(pkt.Payload)))
	}
	if sendErr == nil && !clientBye.Load() {
		// Clean goodbye — including to an evicted reader, whose socket may
		// still accept one small control message even while frames back up.
		sendMu.Lock()
		controlWrite(conn, s.Metrics, s.Log, s.ControlTimeout, remote, "bye", func() error {
			return WriteBye(conn)
		})
		sendMu.Unlock()
	}
	if subr.Evicted() {
		s.Log.Warn("stream: spectator evicted (stalled past drop-to-keyframe)",
			"session", remote, "channel", sub.Channel)
	}
	conn.Close()
	<-readDone
}

// statsSink folds one session's backchannel Stats reports (DESIGN.md §13)
// into the server's telemetry and flight recorder: per-session gauges
// expose the client-observed e2e/decode/SR percentiles on /metrics, the
// cumulative drop/miss counts feed aggregate counters by delta, and the
// session's flight recorder pins the report to the frame in flight so a
// server-side dump shows what the client was experiencing. handle is
// called from the session's read loop; close is called at session
// teardown, possibly from a different goroutine (the read goroutine can
// outlive the session loop briefly), hence the mutex.
type statsSink struct {
	metrics *telemetry.Registry
	remote  string
	rec     *frametrace.Recorder
	log     *logx.Logger

	mu                      sync.Mutex
	closed                  bool
	seen                    bool
	lastDropped, lastMisses uint32
}

// perSessionGauges are the statsSink gauge-name prefixes, each suffixed
// with the sanitised remote address. close unregisters all of them —
// leaving them behind grew /metrics without bound under session churn
// (every reconnecting client has a fresh ephemeral port, hence a fresh
// suffix).
var perSessionGauges = []string{
	"stream_client_age_p50_us_",
	"stream_client_age_p99_us_",
	"stream_client_decode_p99_us_",
	"stream_client_sr_p99_us_",
}

// close unregisters the session's per-remote gauges and drops any late
// stats report still in flight on the read goroutine.
func (k *statsSink) close() {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return
	}
	k.closed = true
	suffix := metricLabel(k.remote)
	for _, name := range perSessionGauges {
		k.metrics.Unregister(name + suffix)
	}
}

func (k *statsSink) handle(st StatsPacket) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return
	}
	m := k.metrics
	m.Counter("stream_client_stats_total").Inc()
	suffix := metricLabel(k.remote)
	m.Gauge("stream_client_age_p50_us_" + suffix).Set(st.AgeP50.Microseconds())
	m.Gauge("stream_client_age_p99_us_" + suffix).Set(st.AgeP99.Microseconds())
	m.Gauge("stream_client_decode_p99_us_" + suffix).Set(st.DecodeP99.Microseconds())
	m.Gauge("stream_client_sr_p99_us_" + suffix).Set(st.SRP99.Microseconds())
	// Dropped/Misses are cumulative on the wire; counters get the deltas
	// (guarded against a client restart resetting its counters).
	if st.Dropped >= k.lastDropped {
		m.Counter("stream_client_dropped_total").Add(int64(st.Dropped - k.lastDropped))
	}
	k.lastDropped = st.Dropped
	if st.Misses >= k.lastMisses {
		m.Counter("stream_client_deadline_misses_total").Add(int64(st.Misses - k.lastMisses))
	}
	k.lastMisses = st.Misses
	k.rec.SetClientStats(k.rec.LastID(), st.AgeP99, st.Dropped, st.Misses)
	if !k.seen {
		k.seen = true
		k.log.Info("stream: backchannel up", "session", k.remote,
			"age_p50", st.AgeP50.Round(time.Microsecond), "age_p99", st.AgeP99.Round(time.Microsecond),
			"decode_p99", st.DecodeP99.Round(time.Microsecond), "sr_p99", st.SRP99.Round(time.Microsecond),
			"frames", st.WindowFrames)
	}
}

// metricLabel sanitises a remote address into a metric-name suffix
// ([a-zA-Z0-9_] only) — the registry has flat names, not labels.
func metricLabel(remote string) string {
	b := []byte(remote)
	for i, c := range b {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			b[i] = '_'
		}
	}
	return string(b)
}

// shedSource wraps a session's frame source with the shed-ladder
// controller: before each frame it reads the recorder's miss streak and
// escalates (or, after sustained recovery, descends) the shed level,
// applying it to the source (Shedder) and the scheduler client (priority
// demotion at ShedDemoted). Runs on the session's send goroutine, so all
// state except the exported level is single-goroutine.
type shedSource struct {
	inner  FrameSource
	target func() Shedder // resolved lazily: the source exists only after Hello
	client *parallel.Client
	rec    *frametrace.Recorder
	pol    ShedPolicy
	remote string
	log    *logx.Logger
	diag   *diag.Diag

	level atomic.Int32
	arm   int64 // next escalation requires a streak >= arm
	clean int64 // consecutive on-budget frames at the current level

	escalations, recoveries *telemetry.Counter
}

// shedLogLimit rate-limits the per-session shed-transition log lines: a
// session oscillating at the capacity edge climbs and descends repeatedly,
// and each transition is one line — the limiter keeps a flapping ladder
// from flooding the log while the suppressed count still records how often
// it flapped.
var shedLogLimit = logx.NewLimiter(1, 4)

// Level returns the session's current shed-ladder level.
func (ss *shedSource) Level() int { return int(ss.level.Load()) }

func (ss *shedSource) NextFrame(i int) ([]byte, bool, frame.Rect, error) {
	ss.evaluate(i)
	return ss.inner.NextFrame(i)
}

func (ss *shedSource) evaluate(i int) {
	streak := ss.rec.MissStreak()
	level := int(ss.level.Load())
	if streak == 0 {
		ss.arm = int64(ss.pol.EscalateStreak)
		if level > 0 {
			ss.clean++
			if ss.clean >= int64(ss.pol.RecoverFrames) {
				ss.setLevel(i, level-1)
				ss.clean = 0
				ss.recoveries.Inc()
			}
		}
		return
	}
	ss.clean = 0
	if ss.arm == 0 {
		ss.arm = int64(ss.pol.EscalateStreak)
	}
	if streak >= ss.arm && level < ss.pol.MaxLevel {
		ss.setLevel(i, level+1)
		// Re-arm relative to the current streak, so a streak that keeps
		// growing climbs one rung per EscalateStreak further misses
		// instead of one rung per frame.
		ss.arm = streak + int64(ss.pol.EscalateStreak)
		ss.escalations.Inc()
		// A climb means sustained misses despite the previous level's
		// relief — worth a capture bundle (the diag cooldown dedupes the
		// rungs of one incident into a single bundle).
		ss.diag.Trigger("shed_escalation",
			"session", ss.remote, "level", level+1, "frame", i, "streak", streak)
	}
}

func (ss *shedSource) setLevel(i, level int) {
	old := int(ss.level.Swap(int32(level)))
	if t := ss.target(); t != nil {
		t.SetShedLevel(level)
	}
	if ss.client != nil {
		if level >= ShedDemoted {
			ss.client.SetPriority(parallel.Background)
		} else {
			ss.client.SetPriority(parallel.Normal)
		}
	}
	if ok, suppressed := shedLogLimit.Allow("shed:" + ss.remote); ok {
		kv := []any{"session", ss.remote, "from", old, "to", level, "frame", i,
			"flight", ss.rec.LastID(), "streak", ss.rec.MissStreak()}
		if suppressed > 0 {
			kv = append(kv, "suppressed", suppressed)
		}
		ss.log.Warn("stream: shed level change", kv...)
	}
}

// beginFlight attaches a flight recorder to a new session (nil when
// FlightFrames is off), retiring the oldest finished recorders beyond the
// retention cap. Per-session recorders keep frame IDs independent across
// concurrent sessions; they share the server's Metrics registry, so miss
// counters aggregate, and the streak gauges go through the server's
// StreakSet (max across live sessions) instead of racing last-writer-wins.
func (s *MultiServer) beginFlight(remote, channel string, spectator bool) *frametrace.Recorder {
	if s.FlightFrames <= 0 {
		return nil
	}
	s.mu.Lock()
	streaks := s.streaks
	s.mu.Unlock()
	cfg := frametrace.Config{Frames: s.FlightFrames, Deadline: s.Deadline, Metrics: s.Metrics, Streaks: streaks}
	var rec *frametrace.Recorder
	if s.Diag != nil && !spectator {
		// The SLO watchdog: a sustained deadline-miss streak on a player
		// session freezes a capture bundle with the triggering frames still
		// in the flight window. The threshold tracks the shed ladder's
		// escalation streak so a bundle lands exactly when shedding starts;
		// Diag's cooldown turns a 100-frame streak (one OnMiss per frame)
		// into one bundle, not a capture storm. rec is captured by the
		// closure before New assigns it; OnMiss only fires from
		// ObserveDeadline calls on the constructed recorder.
		threshold := int64(ShedPolicy{}.withDefaults().EscalateStreak)
		if s.Shed != nil {
			threshold = int64(s.Shed.withDefaults().EscalateStreak)
		}
		cfg.OnMiss = func(id uint64, slack time.Duration) {
			// MissStreak already counts the miss that fired this callback.
			if streak := rec.MissStreak(); streak >= threshold {
				s.Diag.Trigger("miss_streak",
					"session", remote, "channel", channel, "streak", streak, "flight", id, "slack", slack)
			}
		}
	}
	rec = frametrace.New(cfg)
	retain := s.FlightRetain
	if retain <= 0 {
		retain = retiredFlights
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flights = append(s.flights, &sessionFlight{remote: remote, channel: channel, spectator: spectator, rec: rec, live: true})
	retired := 0
	for _, f := range s.flights {
		if !f.live {
			retired++
		}
	}
	for i := 0; retired > retain && i < len(s.flights); {
		if !s.flights[i].live {
			s.flights = append(s.flights[:i], s.flights[i+1:]...)
			retired--
			continue
		}
		i++
	}
	return rec
}

// endFlight marks the most recent live recorder of remote as finished; its
// window stays dumpable until retention evicts it. The recorder leaves the
// streak aggregation so a dead session's final streak stops dominating the
// gauge.
func (s *MultiServer) endFlight(remote string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.flights) - 1; i >= 0; i-- {
		if f := s.flights[i]; f.live && f.remote == remote {
			f.live = false
			s.streaks.Remove(f.rec)
			return
		}
	}
}

// WriteFlight merges every retained session's flight window into one
// Chrome trace-event JSON payload, one Perfetto process per session —
// the /debug/flight implementation (telemetry.FlightDumper).
func (s *MultiServer) WriteFlight(w io.Writer) error {
	s.mu.Lock()
	dumps := make([]frametrace.NamedDump, 0, len(s.flights))
	for _, f := range s.flights {
		name := f.remote
		if f.channel != "" {
			if f.spectator {
				name += " spectating " + f.channel
			} else {
				name += " publishing " + f.channel
			}
		}
		if !f.live {
			name += " (closed)"
		}
		dumps = append(dumps, frametrace.NamedDump{Name: name, Dump: f.rec.Snapshot()})
	}
	s.mu.Unlock()
	return frametrace.WriteChromeTraces(w, dumps)
}

// SessionLatencies returns the modelled frame latencies currently in every
// retained session recorder's ring, keyed "remote#k" (k disambiguates
// successive sessions from one address) — what the saturation benchmark
// reads to compute per-session tail latency.
func (s *MultiServer) SessionLatencies() map[string][]time.Duration {
	s.mu.Lock()
	flights := append([]*sessionFlight(nil), s.flights...)
	s.mu.Unlock()
	out := make(map[string][]time.Duration, len(flights))
	seen := map[string]int{}
	for _, f := range flights {
		key := fmt.Sprintf("%s#%d", f.remote, seen[f.remote])
		seen[f.remote]++
		out[key] = f.rec.WindowLatencies(nil)
	}
	return out
}

// deferredSource resolves its FrameSource lazily: the real source is only
// known after the client's Hello has been validated.
type deferredSource struct {
	get func() FrameSource
}

func (d deferredSource) NextFrame(i int) ([]byte, bool, frame.Rect, error) {
	src := d.get()
	if src == nil {
		return nil, false, frame.Rect{}, fmt.Errorf("stream: session has no source")
	}
	return src.NextFrame(i)
}

// Shutdown stops accepting and closes every live session, then waits for
// the session goroutines to drain (they finish promptly — their
// connections are closed) or for ctx to expire, whichever comes first.
// Relay channels close first: subscriber queues end, so every spectator
// writer sends its Bye before its connection is torn down.
func (s *MultiServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	relay := s.relay
	if s.listener != nil {
		s.listener.Close()
	}
	s.mu.Unlock()
	if relay != nil {
		relay.Shutdown()
	}
	s.mu.Lock()
	for conn := range s.sessions {
		conn.Close()
	}
	for conn := range s.pending {
		conn.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.serveWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SessionCount returns the number of live publisher sessions.
func (s *MultiServer) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// SubscriberCount returns the number of live spectator sessions across all
// publish channels.
func (s *MultiServer) SubscriberCount() int {
	s.mu.Lock()
	relay := s.relay
	s.mu.Unlock()
	if relay == nil {
		return 0
	}
	relay.mu.Lock()
	chans := make([]*Channel, 0, len(relay.channels))
	for _, ch := range relay.channels {
		chans = append(chans, ch)
	}
	relay.mu.Unlock()
	n := 0
	for _, ch := range chans {
		n += ch.Subscribers()
	}
	return n
}
