package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"gamestreamsr/internal/frame"
	"gamestreamsr/internal/frametrace"
	"gamestreamsr/internal/telemetry"
)

// SourceFactory creates a fresh FrameSource per session: each client gets
// its own encoder/detector state (stateful codecs cannot be shared).
type SourceFactory func(hello Hello) (FrameSource, error)

// MultiServer accepts and serves many concurrent client sessions — the
// shape a real cloud-gaming host has (the paper's Sunshine hosts one stream
// per machine, GeForce-Now-class services multiplex many).
type MultiServer struct {
	// Accept is the stream geometry announced to every client.
	Accept Accept
	// NewSource builds the per-session frame source.
	NewSource SourceFactory
	// MaxFrames bounds each session (0 = until source EOF).
	MaxFrames int
	// MaxSessions bounds concurrent sessions (default 16); excess
	// connections are closed immediately.
	MaxSessions int
	// OnInput receives input events from any session, tagged by remote
	// address.
	OnInput func(remote string, in InputPacket)
	// Metrics, when non-nil, receives server telemetry: accepted, rejected
	// and active session counts, plus the per-session frame/byte/latency
	// metrics (see ServerOptions.Metrics). Nil is a no-op.
	Metrics *telemetry.Registry
	// FlightFrames, when > 0, attaches a flight recorder of that many
	// frames to every session (see ServerOptions.Flight). The server keeps
	// the recorders of live sessions plus the most recently finished ones,
	// and WriteFlight merges their windows into one Chrome trace (one
	// Perfetto process per session) — the MultiServer itself is the
	// telemetry.FlightDumper behind /debug/flight.
	FlightFrames int

	mu       sync.Mutex
	sessions map[net.Conn]struct{}
	flights  []*sessionFlight
	listener net.Listener
	closed   bool
}

// sessionFlight pairs one session's flight recorder with its identity.
type sessionFlight struct {
	remote string
	rec    *frametrace.Recorder
	live   bool
}

// retiredFlights bounds how many finished sessions' recorders stay
// dumpable after their connection closes.
const retiredFlights = 4

// errServerClosed is returned by Serve after Shutdown.
var errServerClosed = errors.New("stream: server closed")

// Serve accepts connections from l until the listener fails or Shutdown is
// called. It blocks; run it in a goroutine and use Shutdown to stop.
func (s *MultiServer) Serve(l net.Listener) error {
	if s.NewSource == nil {
		return errors.New("stream: MultiServer needs a source factory")
	}
	max := s.MaxSessions
	if max <= 0 {
		max = 16
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errServerClosed
	}
	s.listener = l
	s.mu.Unlock()
	accepted := s.Metrics.Counter("stream_sessions_accepted_total")
	rejected := s.Metrics.Counter("stream_sessions_rejected_total")
	active := s.Metrics.Gauge("stream_sessions_active")
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return errServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return errServerClosed
		}
		if s.sessions == nil {
			s.sessions = make(map[net.Conn]struct{})
		}
		if len(s.sessions) >= max {
			s.mu.Unlock()
			rejected.Inc()
			log.Printf("stream: rejecting %s: session limit %d reached", conn.RemoteAddr(), max)
			conn.Close()
			continue
		}
		s.sessions[conn] = struct{}{}
		s.mu.Unlock()
		accepted.Inc()
		active.Add(1)

		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.sessions, conn)
				s.mu.Unlock()
				active.Add(-1)
			}()
			s.serveSession(conn)
		}(conn)
	}
}

func (s *MultiServer) serveSession(conn net.Conn) {
	remote := conn.RemoteAddr().String()
	var src FrameSource
	err := Serve(conn, ServerOptions{
		Accept:    s.Accept,
		MaxFrames: s.MaxFrames,
		Metrics:   s.Metrics,
		Flight:    s.beginFlight(remote),
		Remote:    remote,
		Source:    deferredSource{get: func() FrameSource { return src }},
		OnInput: func(in InputPacket) {
			if s.OnInput != nil {
				s.OnInput(remote, in)
			}
		},
		Validate: func(h Hello) error {
			var err error
			src, err = s.NewSource(h)
			return err
		},
	})
	_ = err // per-session errors end that session only
	s.endFlight(remote)
}

// beginFlight attaches a flight recorder to a new session (nil when
// FlightFrames is off), retiring the oldest finished recorders beyond the
// retention cap. Per-session recorders keep frame IDs independent across
// concurrent sessions; they share the server's Metrics registry, so miss
// counters aggregate (the streak gauges are last-writer-wins across
// sessions).
func (s *MultiServer) beginFlight(remote string) *frametrace.Recorder {
	if s.FlightFrames <= 0 {
		return nil
	}
	rec := frametrace.New(frametrace.Config{Frames: s.FlightFrames, Metrics: s.Metrics})
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flights = append(s.flights, &sessionFlight{remote: remote, rec: rec, live: true})
	retired := 0
	for _, f := range s.flights {
		if !f.live {
			retired++
		}
	}
	for i := 0; retired > retiredFlights && i < len(s.flights); {
		if !s.flights[i].live {
			s.flights = append(s.flights[:i], s.flights[i+1:]...)
			retired--
			continue
		}
		i++
	}
	return rec
}

// endFlight marks the most recent live recorder of remote as finished; its
// window stays dumpable until retention evicts it.
func (s *MultiServer) endFlight(remote string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.flights) - 1; i >= 0; i-- {
		if f := s.flights[i]; f.live && f.remote == remote {
			f.live = false
			return
		}
	}
}

// WriteFlight merges every retained session's flight window into one
// Chrome trace-event JSON payload, one Perfetto process per session —
// the /debug/flight implementation (telemetry.FlightDumper).
func (s *MultiServer) WriteFlight(w io.Writer) error {
	s.mu.Lock()
	dumps := make([]frametrace.NamedDump, 0, len(s.flights))
	for _, f := range s.flights {
		name := f.remote
		if !f.live {
			name += " (closed)"
		}
		dumps = append(dumps, frametrace.NamedDump{Name: name, Dump: f.rec.Snapshot()})
	}
	s.mu.Unlock()
	return frametrace.WriteChromeTraces(w, dumps)
}

// deferredSource resolves its FrameSource lazily: the real source is only
// known after the client's Hello has been validated.
type deferredSource struct {
	get func() FrameSource
}

func (d deferredSource) NextFrame(i int) ([]byte, bool, frame.Rect, error) {
	src := d.get()
	if src == nil {
		return nil, false, frame.Rect{}, fmt.Errorf("stream: session has no source")
	}
	return src.NextFrame(i)
}

// Shutdown stops accepting and closes every live session. The Serve call
// returns once in-flight sessions finish (their connections are closed, so
// they finish promptly).
func (s *MultiServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.sessions {
		conn.Close()
	}
	s.mu.Unlock()
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// SessionCount returns the number of live sessions.
func (s *MultiServer) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
