package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gamestreamsr/internal/diag/logx"
	"gamestreamsr/internal/frame"
	"gamestreamsr/internal/frametrace"
	"gamestreamsr/internal/parallel"
	"gamestreamsr/internal/telemetry"
)

// countingSource serves n tiny frames.
type countingSource struct{ n int }

func (c *countingSource) NextFrame(i int) ([]byte, bool, frame.Rect, error) {
	if i >= c.n {
		return nil, false, frame.Rect{}, io.EOF
	}
	return []byte{byte(i)}, i == 0, frame.Rect{W: 4, H: 4}, nil
}

func startMulti(t *testing.T, srv *MultiServer) (addr string, done chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done = make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	return l.Addr().String(), done
}

func runClient(t *testing.T, addr, name string) int {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn)
	if _, err := c.Handshake(Hello{Device: name, RoIWindow: 8, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := c.RecvFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	return n
}

func TestMultiServerConcurrentClients(t *testing.T) {
	srv := &MultiServer{
		Accept:    Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		NewSource: func(Hello) (FrameSource, error) { return &countingSource{n: 5}, nil },
	}
	addr, done := startMulti(t, srv)

	var wg sync.WaitGroup
	counts := make([]int, 4)
	for i := range counts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counts[i] = runClient(t, addr, "client")
		}(i)
	}
	wg.Wait()
	for i, n := range counts {
		if n != 5 {
			t.Errorf("client %d got %d frames, want 5", i, n)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, errServerClosed) {
		t.Errorf("Serve returned %v, want server-closed", err)
	}
	if srv.SessionCount() != 0 {
		t.Errorf("%d sessions left after shutdown", srv.SessionCount())
	}
}

func TestMultiServerRequiresFactory(t *testing.T) {
	srv := &MultiServer{Accept: Accept{Width: 8, Height: 8, GOPSize: 1, QStep: 1}}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := srv.Serve(l); err == nil {
		t.Fatal("missing factory should fail")
	}
}

func TestMultiServerRejectsBadHello(t *testing.T) {
	srv := &MultiServer{
		Accept: Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		NewSource: func(h Hello) (FrameSource, error) {
			if h.RoIWindow < 16 {
				return nil, errors.New("window too small")
			}
			return &countingSource{n: 1}, nil
		},
	}
	addr, done := startMulti(t, srv)
	defer func() {
		srv.Shutdown(context.Background())
		<-done
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn)
	// The server answers a bad Hello with a protocol-level reject carrying
	// the validation error, so the client knows why it was turned away.
	_, err = c.Handshake(Hello{Device: "tiny", RoIWindow: 8, Scale: 2})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("Handshake error = %v, want *RejectedError", err)
	}
	if rej.Code != RejectBadHello || !strings.Contains(rej.Reason, "window too small") {
		t.Errorf("reject = %+v, want bad-hello with the validation reason", rej)
	}
}

func TestMultiServerInputRouting(t *testing.T) {
	type tagged struct {
		remote string
		seq    uint32
	}
	inputs := make(chan tagged, 8)
	gotInput := make(chan struct{})
	var once sync.Once
	srv := &MultiServer{
		Accept: Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		// The session stays open until the input has been routed, so the
		// client's SendInput cannot race the server's hang-up.
		NewSource: func(Hello) (FrameSource, error) {
			return frameFunc(func(i int) ([]byte, bool, frame.Rect, error) {
				if i == 0 {
					return []byte{0}, true, frame.Rect{}, nil
				}
				<-gotInput
				return nil, false, frame.Rect{}, io.EOF
			}), nil
		},
		OnInput: func(remote string, in InputPacket) {
			inputs <- tagged{remote, in.Seq}
			once.Do(func() { close(gotInput) })
		},
	}
	addr, done := startMulti(t, srv)
	defer func() {
		srv.Shutdown(context.Background())
		<-done
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn)
	if _, err := c.Handshake(Hello{Device: "x", RoIWindow: 8, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendInput(InputPacket{Seq: 77}); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := c.RecvFrame(); err != nil {
			break
		}
	}
	select {
	case in := <-inputs:
		if in.seq != 77 || in.remote == "" {
			t.Errorf("input = %+v", in)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("input never routed")
	}
}

func TestMultiServerSessionCap(t *testing.T) {
	release := make(chan struct{})
	reg := telemetry.NewRegistry()
	srv := &MultiServer{
		Accept:      Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		MaxSessions: 1,
		Metrics:     reg,
		NewSource: func(Hello) (FrameSource, error) {
			return frameFunc(func(i int) ([]byte, bool, frame.Rect, error) {
				if i == 0 {
					return []byte{0}, true, frame.Rect{}, nil
				}
				<-release // hold the session open
				return nil, false, frame.Rect{}, io.EOF
			}), nil
		},
	}
	addr, done := startMulti(t, srv)
	defer func() {
		close(release)
		srv.Shutdown(context.Background())
		<-done
	}()

	// First client occupies the only slot.
	conn1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	c1 := NewClient(conn1)
	if _, err := c1.Handshake(Hello{Device: "a", RoIWindow: 8, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.RecvFrame(); err != nil {
		t.Fatal(err)
	}

	// Second client is turned away with a protocol-level capacity reject.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	c2 := NewClient(conn2)
	errc := make(chan error, 1)
	go func() {
		_, err := c2.Handshake(Hello{Device: "b", RoIWindow: 8, Scale: 2})
		errc <- err
	}()
	select {
	case err := <-errc:
		var rej *RejectedError
		if !errors.As(err, &rej) {
			t.Fatalf("second session got %v, want *RejectedError", err)
		}
		if rej.Code != RejectCapacity || !strings.Contains(rej.Reason, "session limit") {
			t.Errorf("reject = %+v, want capacity with the limit in the reason", rej)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("second client hung instead of being rejected")
	}

	// The rejection is counted, not silent.
	s := reg.Snapshot()
	if got := s.Counter("stream_sessions_rejected_total"); got != 1 {
		t.Errorf("rejected_total = %d, want 1", got)
	}
	if got := s.Counter("stream_sessions_rejected_capacity_total"); got != 1 {
		t.Errorf("rejected_capacity_total = %d, want 1", got)
	}
	if got := s.Counter("stream_sessions_accepted_total"); got != 1 {
		t.Errorf("accepted_total = %d, want 1", got)
	}
	if got := s.Gauge("stream_sessions_active"); got != 1 {
		t.Errorf("sessions_active = %d, want 1 while the slot is held", got)
	}
}

func TestMultiServerSessionTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	const nFrames = 5
	srv := &MultiServer{
		Accept:    Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		Metrics:   reg,
		NewSource: func(Hello) (FrameSource, error) { return &countingSource{n: nFrames}, nil },
	}
	addr, done := startMulti(t, srv)
	if got := runClient(t, addr, "client"); got != nFrames {
		t.Fatalf("client got %d frames", got)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done

	s := reg.Snapshot()
	if got := s.Counter("stream_frames_sent_total"); got != nFrames {
		t.Errorf("frames_sent_total = %d, want %d", got, nFrames)
	}
	// countingSource payloads are 1 byte each.
	if got := s.Counter("stream_bytes_sent_total"); got != nFrames {
		t.Errorf("bytes_sent_total = %d, want %d", got, nFrames)
	}
	h, ok := s.Histogram("stream_frame_send_seconds")
	if !ok || h.Count != nFrames {
		t.Errorf("frame_send_seconds count = %d (present %v), want %d", h.Count, ok, nFrames)
	}
	if got := s.Gauge("stream_sessions_active"); got != 0 {
		t.Errorf("sessions_active = %d after shutdown, want 0", got)
	}
}

// TestMultiServerFlightRecorders asserts the per-session flight wiring:
// with FlightFrames on, every session records its sends (span, payload
// size, RoI, deadline verdict) and WriteFlight merges all retained windows
// into one parseable multi-process Chrome trace.
func TestMultiServerFlightRecorders(t *testing.T) {
	reg := telemetry.NewRegistry()
	const nFrames = 5
	srv := &MultiServer{
		Accept:       Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		Metrics:      reg,
		FlightFrames: 8,
		NewSource:    func(Hello) (FrameSource, error) { return &countingSource{n: nFrames}, nil },
	}
	addr, done := startMulti(t, srv)
	for i := 0; i < 2; i++ {
		if got := runClient(t, addr, "client"); got != nFrames {
			t.Fatalf("client got %d frames", got)
		}
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done

	var buf bytes.Buffer
	if err := srv.WriteFlight(&buf); err != nil {
		t.Fatal(err)
	}
	dumps, err := frametrace.ParseChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 2 {
		t.Fatalf("flight dump has %d sessions, want 2", len(dumps))
	}
	for _, nd := range dumps {
		if !strings.Contains(nd.Name, "(closed)") {
			t.Errorf("finished session %q not marked closed", nd.Name)
		}
		if len(nd.Dump.Frames) != nFrames {
			t.Fatalf("session %q recorded %d frames, want %d", nd.Name, len(nd.Dump.Frames), nFrames)
		}
		for _, f := range nd.Dump.Frames {
			if len(f.Spans) != 2 || f.Spans[0].Lane != "source" || f.Spans[1].Lane != "send" {
				t.Errorf("frame %d spans = %+v, want source+send spans", f.ID, f.Spans)
			}
			// countingSource payloads are 1 byte, RoI 4x4.
			if f.CodedBytes != 1 || f.RoI.W != 4 || f.RoI.H != 4 {
				t.Errorf("frame %d attributes = %+v", f.ID, f)
			}
			if f.Latency <= 0 {
				t.Errorf("frame %d send not accounted against the deadline", f.ID)
			}
		}
	}
	// The sessions' SLO instruments share the server registry.
	if got := reg.Snapshot().Counter("frametrace_frames_total"); got != 2*nFrames {
		t.Errorf("frametrace_frames_total = %d, want %d", got, 2*nFrames)
	}
}

// TestMultiServerFlightRetention asserts finished sessions' recorders stay
// dumpable only up to the retention cap.
func TestMultiServerFlightRetention(t *testing.T) {
	srv := &MultiServer{
		Accept:       Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		FlightFrames: 4,
		NewSource:    func(Hello) (FrameSource, error) { return &countingSource{n: 1}, nil },
	}
	addr, done := startMulti(t, srv)
	const sessions = retiredFlights + 4
	for i := 0; i < sessions; i++ {
		runClient(t, addr, "client")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done

	srv.mu.Lock()
	kept := len(srv.flights)
	srv.mu.Unlock()
	// Pruning runs at session start, so the cap can be exceeded by the
	// sessions that finished after the last prune — but it must not grow
	// with the session count.
	if kept > retiredFlights+2 {
		t.Errorf("%d recorders retained after %d sessions, cap is ~%d", kept, sessions, retiredFlights)
	}
	var buf bytes.Buffer
	if err := srv.WriteFlight(&buf); err != nil {
		t.Fatal(err)
	}
	if dumps, err := frametrace.ParseChromeTrace(&buf); err != nil || len(dumps) != kept {
		t.Errorf("dump has %d sessions (err %v), want %d", len(dumps), err, kept)
	}
}

// TestServeFlightAndSlowSendLog asserts the session send loop records into
// an externally owned recorder and logs send-latency outliers with the
// flight frame ID (the log line is the server-side correlation handle).
func TestServeFlightAndSlowSendLog(t *testing.T) {
	rec := frametrace.New(frametrace.Config{Frames: 8})
	lg := logx.New(logx.Config{Out: io.Discard, Ring: 64})
	// The slow-send limiter buckets are keyed by remote and live for the
	// whole process; a unique remote per run keeps -count=N runs fresh.
	remote := fmt.Sprintf("test-peer-%d", time.Now().UnixNano())

	server, client := net.Pipe()
	defer client.Close()
	go func() {
		defer server.Close()
		Serve(server, ServerOptions{
			Accept:   Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
			Source:   &countingSource{n: 3},
			Flight:   rec,
			SlowSend: time.Nanosecond, // every send is an outlier
			Remote:   remote,
			Log:      lg,
		})
	}()
	c := NewClient(client)
	if _, err := c.Handshake(Hello{Device: "d", RoIWindow: 8, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := c.RecvFrame(); err != nil {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("client got %d frames", n)
	}
	d := rec.Snapshot()
	if len(d.Frames) != 3 {
		t.Fatalf("recorder holds %d frames, want 3", len(d.Frames))
	}
	var logs strings.Builder
	for _, e := range lg.Recent(0) {
		logs.WriteString(e.Line)
		logs.WriteByte('\n')
	}
	for _, f := range d.Frames {
		want := fmt.Sprintf("flight=%d", f.ID)
		if !strings.Contains(logs.String(), want) {
			t.Errorf("slow-send log missing %q:\n%s", want, logs.String())
		}
	}
	if !strings.Contains(logs.String(), "slow send session="+remote) {
		t.Errorf("slow-send log missing the remote tag:\n%s", logs.String())
	}
}

// TestMultiServerShutdownWaitsForSessions: Shutdown must block on in-flight
// session goroutines (or the context), not return immediately.
func TestMultiServerShutdownWaitsForSessions(t *testing.T) {
	release := make(chan struct{})
	inSession := make(chan struct{})
	var once sync.Once
	srv := &MultiServer{
		Accept: Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		NewSource: func(Hello) (FrameSource, error) {
			return frameFunc(func(i int) ([]byte, bool, frame.Rect, error) {
				if i == 0 {
					return []byte{0}, true, frame.Rect{}, nil
				}
				once.Do(func() { close(inSession) })
				<-release // stuck in the source: ignores the closed conn
				return nil, false, frame.Rect{}, io.EOF
			}), nil
		},
	}
	addr, done := startMulti(t, srv)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn)
	if _, err := c.Handshake(Hello{Device: "a", RoIWindow: 8, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvFrame(); err != nil {
		t.Fatal(err)
	}
	<-inSession

	// The session goroutine is wedged in NextFrame, so a bounded Shutdown
	// must report the deadline rather than pretending the drain finished.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with a wedged session = %v, want deadline exceeded", err)
	}

	close(release)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown after release = %v", err)
	}
	<-done
	if srv.SessionCount() != 0 {
		t.Errorf("%d sessions left after shutdown", srv.SessionCount())
	}
}

// TestMultiServerAdmissionControl: once the live sessions' windowed p99
// leaves less than MinSlack of headroom, new sessions get a Busy reject.
func TestMultiServerAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	reg := telemetry.NewRegistry()
	srv := &MultiServer{
		Accept:       Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		Metrics:      reg,
		FlightFrames: 8,
		// MinSlack of an hour cannot be met, so the policy rejects as soon
		// as it has MinSamples of evidence — deterministic without having
		// to manufacture real deadline misses.
		Admission: &AdmissionPolicy{MinSlack: time.Hour, MinSamples: 2},
		NewSource: func(Hello) (FrameSource, error) {
			return frameFunc(func(i int) ([]byte, bool, frame.Rect, error) {
				if i < 5 {
					return []byte{byte(i)}, i == 0, frame.Rect{}, nil
				}
				<-release // hold the session (and its window) live
				return nil, false, frame.Rect{}, io.EOF
			}), nil
		},
	}
	addr, done := startMulti(t, srv)
	defer func() {
		close(release)
		srv.Shutdown(context.Background())
		<-done
	}()

	// First client is admitted cold (no evidence yet) and fills the window.
	conn1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	c1 := NewClient(conn1)
	if _, err := c1.Handshake(Hello{Device: "a", RoIWindow: 8, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c1.RecvFrame(); err != nil {
			t.Fatal(err)
		}
	}

	// Second client is refused with the live p99 in the reason.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	_, err = NewClient(conn2).Handshake(Hello{Device: "b", RoIWindow: 8, Scale: 2})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("Handshake error = %v, want *RejectedError", err)
	}
	if rej.Code != RejectBusy || !strings.Contains(rej.Reason, "no SLO headroom") {
		t.Errorf("reject = %+v, want busy with the headroom reason", rej)
	}
	if got := reg.Snapshot().Counter("stream_sessions_rejected_busy_total"); got != 1 {
		t.Errorf("rejected_busy_total = %d, want 1", got)
	}
}

// shedProbe is a FrameSource implementing both optional capabilities: it
// records shed-level transitions and the session scheduler client, and
// sleeps past the deadline for the first slowFrames frames.
type shedProbe struct {
	mu         sync.Mutex
	levels     []int
	sched      *parallel.Client
	slowFrames int
	sleep      time.Duration
	frames     int
}

func (p *shedProbe) SetShedLevel(level int) {
	p.mu.Lock()
	p.levels = append(p.levels, level)
	p.mu.Unlock()
}

func (p *shedProbe) SetSched(c *parallel.Client) { p.sched = c }

func (p *shedProbe) NextFrame(i int) ([]byte, bool, frame.Rect, error) {
	if i >= p.frames {
		return nil, false, frame.Rect{}, io.EOF
	}
	if i < p.slowFrames {
		time.Sleep(p.sleep)
	}
	return []byte{byte(i)}, i == 0, frame.Rect{}, nil
}

// TestMultiServerShedLadder drives a session past its deadline until the
// shed ladder climbs to priority demotion, then lets it recover and checks
// the ladder descends.
func TestMultiServerShedLadder(t *testing.T) {
	probe := &shedProbe{slowFrames: 8, sleep: 3 * time.Millisecond, frames: 16}
	reg := telemetry.NewRegistry()
	sched := parallel.NewScheduler(2)
	defer sched.Close()
	srv := &MultiServer{
		Accept:       Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		Metrics:      reg,
		FlightFrames: 8,
		Deadline:     time.Millisecond, // every slow frame misses
		Sched:        sched,
		Shed:         &ShedPolicy{EscalateStreak: 2, RecoverFrames: 3},
		NewSource:    func(Hello) (FrameSource, error) { return probe, nil },
	}
	addr, done := startMulti(t, srv)
	if got := runClient(t, addr, "shed"); got != probe.frames {
		t.Fatalf("client got %d frames, want %d", got, probe.frames)
	}
	srv.Shutdown(context.Background())
	<-done

	probe.mu.Lock()
	levels := append([]int(nil), probe.levels...)
	probe.mu.Unlock()
	// Misses at frames 0..7 build streaks 1..8; with EscalateStreak 2 the
	// ladder climbs at streaks 2, 4 and 6. Frames 8..15 are on budget, so
	// after RecoverFrames=3 clean frames it descends at least once.
	want := []int{1, 2, 3}
	if len(levels) < 4 {
		t.Fatalf("shed levels = %v, want 3 escalations then recovery", levels)
	}
	for i, l := range want {
		if levels[i] != l {
			t.Fatalf("shed levels = %v, want prefix %v", levels, want)
		}
	}
	if last := levels[len(levels)-1]; last >= 3 {
		t.Errorf("shed levels = %v, want a recovery below ShedDemoted at the end", levels)
	}
	if probe.sched == nil {
		t.Errorf("SchedAware source never received the session's scheduler client")
	} else if probe.sched.Priority() != parallel.Normal {
		t.Errorf("session client priority = %v after recovery, want Normal", probe.sched.Priority())
	}
	s := reg.Snapshot()
	if got := s.Counter("stream_shed_escalations_total"); got != 3 {
		t.Errorf("shed_escalations_total = %d, want 3", got)
	}
	if got := s.Counter("stream_shed_recoveries_total"); got < 1 {
		t.Errorf("shed_recoveries_total = %d, want >= 1", got)
	}
}
