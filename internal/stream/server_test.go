package stream

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"gamestreamsr/internal/frame"
	"gamestreamsr/internal/telemetry"
)

// countingSource serves n tiny frames.
type countingSource struct{ n int }

func (c *countingSource) NextFrame(i int) ([]byte, bool, frame.Rect, error) {
	if i >= c.n {
		return nil, false, frame.Rect{}, io.EOF
	}
	return []byte{byte(i)}, i == 0, frame.Rect{W: 4, H: 4}, nil
}

func startMulti(t *testing.T, srv *MultiServer) (addr string, done chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done = make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	return l.Addr().String(), done
}

func runClient(t *testing.T, addr, name string) int {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn)
	if _, err := c.Handshake(Hello{Device: name, RoIWindow: 8, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := c.RecvFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	return n
}

func TestMultiServerConcurrentClients(t *testing.T) {
	srv := &MultiServer{
		Accept:    Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		NewSource: func(Hello) (FrameSource, error) { return &countingSource{n: 5}, nil },
	}
	addr, done := startMulti(t, srv)

	var wg sync.WaitGroup
	counts := make([]int, 4)
	for i := range counts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counts[i] = runClient(t, addr, "client")
		}(i)
	}
	wg.Wait()
	for i, n := range counts {
		if n != 5 {
			t.Errorf("client %d got %d frames, want 5", i, n)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, errServerClosed) {
		t.Errorf("Serve returned %v, want server-closed", err)
	}
	if srv.SessionCount() != 0 {
		t.Errorf("%d sessions left after shutdown", srv.SessionCount())
	}
}

func TestMultiServerRequiresFactory(t *testing.T) {
	srv := &MultiServer{Accept: Accept{Width: 8, Height: 8, GOPSize: 1, QStep: 1}}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := srv.Serve(l); err == nil {
		t.Fatal("missing factory should fail")
	}
}

func TestMultiServerRejectsBadHello(t *testing.T) {
	srv := &MultiServer{
		Accept: Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		NewSource: func(h Hello) (FrameSource, error) {
			if h.RoIWindow < 16 {
				return nil, errors.New("window too small")
			}
			return &countingSource{n: 1}, nil
		},
	}
	addr, done := startMulti(t, srv)
	defer func() {
		srv.Shutdown(context.Background())
		<-done
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn)
	if err := WriteHello(conn, Hello{Device: "tiny", RoIWindow: 8, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	// The server rejects and closes; the client sees EOF or a reset.
	if _, err := c.RecvFrame(); err == nil {
		t.Fatal("rejected session should not deliver frames")
	}
}

func TestMultiServerInputRouting(t *testing.T) {
	type tagged struct {
		remote string
		seq    uint32
	}
	inputs := make(chan tagged, 8)
	gotInput := make(chan struct{})
	var once sync.Once
	srv := &MultiServer{
		Accept: Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		// The session stays open until the input has been routed, so the
		// client's SendInput cannot race the server's hang-up.
		NewSource: func(Hello) (FrameSource, error) {
			return frameFunc(func(i int) ([]byte, bool, frame.Rect, error) {
				if i == 0 {
					return []byte{0}, true, frame.Rect{}, nil
				}
				<-gotInput
				return nil, false, frame.Rect{}, io.EOF
			}), nil
		},
		OnInput: func(remote string, in InputPacket) {
			inputs <- tagged{remote, in.Seq}
			once.Do(func() { close(gotInput) })
		},
	}
	addr, done := startMulti(t, srv)
	defer func() {
		srv.Shutdown(context.Background())
		<-done
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn)
	if _, err := c.Handshake(Hello{Device: "x", RoIWindow: 8, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendInput(InputPacket{Seq: 77}); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := c.RecvFrame(); err != nil {
			break
		}
	}
	select {
	case in := <-inputs:
		if in.seq != 77 || in.remote == "" {
			t.Errorf("input = %+v", in)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("input never routed")
	}
}

func TestMultiServerSessionCap(t *testing.T) {
	release := make(chan struct{})
	reg := telemetry.NewRegistry()
	srv := &MultiServer{
		Accept:      Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		MaxSessions: 1,
		Metrics:     reg,
		NewSource: func(Hello) (FrameSource, error) {
			return frameFunc(func(i int) ([]byte, bool, frame.Rect, error) {
				if i == 0 {
					return []byte{0}, true, frame.Rect{}, nil
				}
				<-release // hold the session open
				return nil, false, frame.Rect{}, io.EOF
			}), nil
		},
	}
	addr, done := startMulti(t, srv)
	defer func() {
		close(release)
		srv.Shutdown(context.Background())
		<-done
	}()

	// First client occupies the only slot.
	conn1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	c1 := NewClient(conn1)
	if _, err := c1.Handshake(Hello{Device: "a", RoIWindow: 8, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.RecvFrame(); err != nil {
		t.Fatal(err)
	}

	// Second client is turned away (connection closed without handshake).
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	c2 := NewClient(conn2)
	errc := make(chan error, 1)
	go func() {
		_, err := c2.Handshake(Hello{Device: "b", RoIWindow: 8, Scale: 2})
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("second session should be rejected at the cap")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("second client hung instead of being rejected")
	}

	// The rejection is counted, not silent.
	s := reg.Snapshot()
	if got := s.Counter("stream_sessions_rejected_total"); got != 1 {
		t.Errorf("rejected_total = %d, want 1", got)
	}
	if got := s.Counter("stream_sessions_accepted_total"); got != 1 {
		t.Errorf("accepted_total = %d, want 1", got)
	}
	if got := s.Gauge("stream_sessions_active"); got != 1 {
		t.Errorf("sessions_active = %d, want 1 while the slot is held", got)
	}
}

func TestMultiServerSessionTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	const nFrames = 5
	srv := &MultiServer{
		Accept:    Accept{Width: 32, Height: 32, GOPSize: 4, QStep: 6},
		Metrics:   reg,
		NewSource: func(Hello) (FrameSource, error) { return &countingSource{n: nFrames}, nil },
	}
	addr, done := startMulti(t, srv)
	if got := runClient(t, addr, "client"); got != nFrames {
		t.Fatalf("client got %d frames", got)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done

	s := reg.Snapshot()
	if got := s.Counter("stream_frames_sent_total"); got != nFrames {
		t.Errorf("frames_sent_total = %d, want %d", got, nFrames)
	}
	// countingSource payloads are 1 byte each.
	if got := s.Counter("stream_bytes_sent_total"); got != nFrames {
		t.Errorf("bytes_sent_total = %d, want %d", got, nFrames)
	}
	h, ok := s.Histogram("stream_frame_send_seconds")
	if !ok || h.Count != nFrames {
		t.Errorf("frame_send_seconds count = %d (present %v), want %d", h.Count, ok, nFrames)
	}
	if got := s.Gauge("stream_sessions_active"); got != 0 {
		t.Errorf("sessions_active = %d after shutdown, want 0", got)
	}
}
