package stream

import (
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"gamestreamsr/internal/frame"
	"gamestreamsr/internal/frametrace"
	"gamestreamsr/internal/telemetry"
)

// FrameSource supplies coded frames to a server session. Implementations
// typically wrap a renderer + RoI detector + encoder (see cmd/gssr-server).
type FrameSource interface {
	// NextFrame returns the coded payload, whether it is a reference
	// frame, and the RoI rectangle for frame index i. io.EOF ends the
	// session cleanly.
	NextFrame(i int) (payload []byte, key bool, roi frame.Rect, err error)
}

// ServerOptions configures a server session.
type ServerOptions struct {
	// Accept is the stream geometry announced to the client.
	Accept Accept
	// Source supplies frames until it returns io.EOF or MaxFrames is hit.
	Source FrameSource
	// MaxFrames bounds the session length; 0 means until Source EOF.
	MaxFrames int
	// OnInput, if non-nil, receives client input events.
	OnInput func(InputPacket)
	// Validate, if non-nil, vets the client's Hello before accepting.
	Validate func(Hello) error
	// Metrics, when non-nil, receives per-session telemetry: frames and
	// payload bytes sent, and a per-frame send-latency histogram. Nil is
	// a no-op.
	Metrics *telemetry.Registry
	// Flight, when non-nil, records every frame send into a flight
	// recorder: the send span on the "send" lane plus the frame's RoI and
	// payload size, and the send latency accounted against the recorder's
	// deadline — so a stalled socket shows up as a deadline-miss streak and
	// the window around it can be dumped (see internal/frametrace). The
	// recorder's frame IDs also tag the slow-send log lines, correlating
	// server logs with client-side traces of the same stream. Nil is a
	// no-op.
	Flight *frametrace.Recorder
	// SlowSend is the send-latency threshold above which a frame's send is
	// logged as an outlier (with its index and flight-recorder frame ID).
	// 0 picks DefaultSlowSend; negative disables the log.
	SlowSend time.Duration
	// Remote tags this session's log lines (typically the client address).
	Remote string
}

// DefaultSlowSend is the default outlier threshold for frame-send logging:
// three 60 FPS frame budgets — a send this slow means the link, not the
// encoder, is pacing the stream.
const DefaultSlowSend = 50 * time.Millisecond

// Serve runs one server session over conn: handshake, then frames until the
// source is exhausted, then Bye. Client input arriving during the stream is
// dispatched to OnInput from a separate goroutine. Serve returns when the
// stream has been fully sent (or on the first error); the caller owns the
// connection and closes it.
func Serve(conn io.ReadWriter, opt ServerOptions) error {
	if opt.Source == nil {
		return errors.New("stream: server needs a frame source")
	}
	msg, err := ReadMsg(conn)
	if err != nil {
		return fmt.Errorf("stream: reading hello: %w", err)
	}
	if msg.Type != MsgHello {
		return fmt.Errorf("%w: expected hello, got %v", ErrProtocol, msg.Type)
	}
	if opt.Validate != nil {
		if err := opt.Validate(*msg.Hello); err != nil {
			// Tell the client why before closing — a silent close is
			// indistinguishable from a network fault on their side. The
			// write is bounded: a peer that never reads must not wedge
			// the session goroutine.
			if c, ok := conn.(interface{ SetWriteDeadline(time.Time) error }); ok {
				c.SetWriteDeadline(time.Now().Add(time.Second))
				defer c.SetWriteDeadline(time.Time{})
			}
			_ = WriteReject(conn, Reject{Code: RejectBadHello, Reason: err.Error()})
			return fmt.Errorf("stream: rejecting client: %w", err)
		}
	}
	if err := WriteAccept(conn, opt.Accept); err != nil {
		return fmt.Errorf("stream: writing accept: %w", err)
	}

	// Drain client messages (input events, bye) concurrently.
	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			m, err := ReadMsg(conn)
			if err != nil {
				return
			}
			switch m.Type {
			case MsgInput:
				if opt.OnInput != nil {
					opt.OnInput(*m.Input)
				}
			case MsgBye:
				return
			default:
				return // protocol violation: stop reading
			}
			select {
			case <-stopRead:
				return
			default:
			}
		}
	}()

	framesSent := opt.Metrics.Counter("stream_frames_sent_total")
	bytesSent := opt.Metrics.Counter("stream_bytes_sent_total")
	sendLat := opt.Metrics.Histogram("stream_frame_send_seconds", telemetry.LatencyBuckets())
	slowSend := opt.SlowSend
	if slowSend == 0 {
		slowSend = DefaultSlowSend
	}

	var sendErr error
	// Reused across frames so deadline accounting allocates nothing.
	var latScratch [2]frametrace.StageLatency
	for i := 0; opt.MaxFrames == 0 || i < opt.MaxFrames; i++ {
		tSrc := time.Now()
		payload, key, roi, err := opt.Source.NextFrame(i)
		dSrc := time.Since(tSrc)
		if err == io.EOF {
			break
		}
		if err != nil {
			sendErr = fmt.Errorf("stream: frame source: %w", err)
			break
		}
		pkt := FramePacket{Index: uint32(i), Keyenc: key, RoI: roi, Payload: payload}
		fid := opt.Flight.BeginFrame(i)
		opt.Flight.SetEncode(fid, roi, len(payload), len(payload))
		opt.Flight.Span(fid, "source", "source", tSrc, dSrc)
		t0 := time.Now()
		if err := WriteFrame(conn, pkt); err != nil {
			sendErr = fmt.Errorf("stream: writing frame %d: %w", i, err)
			break
		}
		d := time.Since(t0)
		opt.Flight.Span(fid, "send", "send", t0, d)
		// Frame production (render + detect + encode) plus the send are the
		// server's whole per-frame budget; accounting both against the
		// recorder's deadline makes an overloaded scheduler or a stalled
		// client socket visible as a miss streak on /metrics — the signal
		// the shed ladder and admission control key off.
		latScratch[0] = frametrace.StageLatency{Name: "source", D: dSrc}
		latScratch[1] = frametrace.StageLatency{Name: "send", D: d}
		opt.Flight.ObserveDeadline(fid, latScratch[:])
		if slowSend > 0 && d > slowSend {
			log.Printf("stream: slow send to %s: frame %d (flight id %d) took %v (%d B, RoI %dx%d)",
				opt.Remote, i, fid, d, len(payload), roi.W, roi.H)
		}
		sendLat.ObserveDuration(d)
		framesSent.Inc()
		bytesSent.Add(int64(len(payload)))
	}
	if sendErr == nil {
		sendErr = WriteBye(conn)
	}
	close(stopRead)
	// The read goroutine exits when the client sends Bye or the caller
	// closes the connection; do not block on it here.
	return sendErr
}

// Client is the Moonlight-analogue session endpoint.
type Client struct {
	conn io.ReadWriter
	cfg  Accept
}

// NewClient wraps an established connection.
func NewClient(conn io.ReadWriter) *Client { return &Client{conn: conn} }

// Handshake sends the Hello (the device's capability probe result) and
// returns the server's stream geometry.
func (c *Client) Handshake(h Hello) (Accept, error) {
	if err := WriteHello(c.conn, h); err != nil {
		return Accept{}, fmt.Errorf("stream: writing hello: %w", err)
	}
	msg, err := ReadMsg(c.conn)
	if err != nil {
		return Accept{}, fmt.Errorf("stream: reading accept: %w", err)
	}
	if msg.Type == MsgReject {
		return Accept{}, &RejectedError{Code: msg.Reject.Code, Reason: msg.Reject.Reason}
	}
	if msg.Type != MsgAccept {
		return Accept{}, fmt.Errorf("%w: expected accept, got %v", ErrProtocol, msg.Type)
	}
	c.cfg = *msg.Accept
	return c.cfg, nil
}

// Config returns the negotiated stream geometry (zero before Handshake).
func (c *Client) Config() Accept { return c.cfg }

// RecvFrame returns the next frame packet, or io.EOF after the server's Bye.
func (c *Client) RecvFrame() (FramePacket, error) {
	msg, err := ReadMsg(c.conn)
	if err != nil {
		return FramePacket{}, err
	}
	switch msg.Type {
	case MsgFrame:
		return *msg.Frame, nil
	case MsgBye:
		return FramePacket{}, io.EOF
	default:
		return FramePacket{}, fmt.Errorf("%w: expected frame, got %v", ErrProtocol, msg.Type)
	}
}

// SendInput ships a user-input event to the server.
func (c *Client) SendInput(in InputPacket) error {
	return WriteInput(c.conn, in)
}
