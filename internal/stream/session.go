package stream

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gamestreamsr/internal/diag/logx"
	"gamestreamsr/internal/frame"
	"gamestreamsr/internal/frametrace"
	"gamestreamsr/internal/telemetry"
)

// FrameSource supplies coded frames to a server session. Implementations
// typically wrap a renderer + RoI detector + encoder (see cmd/gssr-server).
type FrameSource interface {
	// NextFrame returns the coded payload, whether it is a reference
	// frame, and the RoI rectangle for frame index i. io.EOF ends the
	// session cleanly.
	NextFrame(i int) (payload []byte, key bool, roi frame.Rect, err error)
}

// ServerOptions configures a server session.
type ServerOptions struct {
	// Accept is the stream geometry announced to the client.
	Accept Accept
	// Source supplies frames until it returns io.EOF or MaxFrames is hit.
	Source FrameSource
	// MaxFrames bounds the session length; 0 means until Source EOF.
	MaxFrames int
	// OnInput, if non-nil, receives client input events.
	OnInput func(InputPacket)
	// OnStats, if non-nil, receives the client's periodic telemetry
	// backchannel reports (v2 sessions only; see StatsPacket). Called from
	// the session's read goroutine — keep it fast.
	OnStats func(StatsPacket)
	// Validate, if non-nil, vets the client's Hello before accepting.
	Validate func(Hello) error
	// Metrics, when non-nil, receives per-session telemetry: frames and
	// payload bytes sent, and a per-frame send-latency histogram. Nil is
	// a no-op.
	Metrics *telemetry.Registry
	// Flight, when non-nil, records every frame send into a flight
	// recorder: the send span on the "send" lane plus the frame's RoI and
	// payload size, and the send latency accounted against the recorder's
	// deadline — so a stalled socket shows up as a deadline-miss streak and
	// the window around it can be dumped (see internal/frametrace). The
	// recorder's frame IDs also tag the slow-send log lines, correlating
	// server logs with client-side traces of the same stream. Nil is a
	// no-op.
	Flight *frametrace.Recorder
	// SlowSend is the send-latency threshold above which a frame's send is
	// logged as an outlier (with its index and flight-recorder frame ID).
	// 0 picks DefaultSlowSend; negative disables the log.
	SlowSend time.Duration
	// Remote tags this session's log lines (typically the client address).
	Remote string
	// ResumeToken, when non-empty, rides in the Accept of v4+ sessions: the
	// opaque handle a reconnecting client replays in its Hello to be
	// correlated with (and, for publishers, reclaim the parked channel of)
	// this session.
	ResumeToken string
	// IdleTimeout, when > 0, arms read-side liveness on v4+ sessions: the
	// client heartbeats (MsgPing), the session pongs, and a connection that
	// stays silent past the timeout is reaped as dead (the connection is
	// closed, unblocking the frame writer). Pre-v4 clients never ping, so
	// the deadline is only armed when the negotiated version is v4+.
	IdleTimeout time.Duration
	// ControlTimeout bounds small control writes (reject, bye, pong);
	// <= 0 picks DefaultControlTimeout.
	ControlTimeout time.Duration
	// Log receives the session's structured log lines (slow sends, reaps,
	// session-end diagnosis), tagged with session/frame/flight fields. Nil
	// uses logx.Default().
	Log *logx.Logger
	// OnReap, if non-nil, is called when read-side liveness reaps the
	// session (no traffic for IdleTimeout) — MultiServer wires it to the
	// diag watchdog so a reap freezes a capture bundle.
	OnReap func(idle time.Duration)
	// Tap, if non-nil, observes every outgoing frame packet after its
	// flight identity is assigned and before it hits the socket — the
	// relay's encode-once fan-out point. The packet's payload is only
	// valid during the call; implementations that keep it must copy.
	Tap func(FramePacket)
}

// DefaultSlowSend is the default outlier threshold for frame-send logging:
// three 60 FPS frame budgets — a send this slow means the link, not the
// encoder, is pacing the stream.
const DefaultSlowSend = 50 * time.Millisecond

// slowSendLimit rate-limits the per-session slow-send log lines: a stalled
// socket makes EVERY send slow, and one line per frame at 60 FPS is a log
// flood that buries the signal. The allowed lines carry a suppressed=N
// field so the flood's size survives the limiting.
var slowSendLimit = logx.NewLimiter(1, 3)

// Serve runs one server session over conn: handshake, then frames until the
// source is exhausted, then Bye. Client input arriving during the stream is
// dispatched to OnInput from a separate goroutine. Serve returns when the
// stream has been fully sent (or on the first error); the caller owns the
// connection and closes it.
func Serve(conn io.ReadWriter, opt ServerOptions) error {
	if opt.Source == nil {
		return errors.New("stream: server needs a frame source")
	}
	msg, err := ReadMsg(conn)
	tHello := time.Now() // T1 of the client's Cristian offset estimate
	if err != nil {
		return fmt.Errorf("stream: reading hello: %w", err)
	}
	if msg.Type != MsgHello {
		return fmt.Errorf("%w: expected hello, got %v", ErrProtocol, msg.Type)
	}
	return serveHello(conn, *msg.Hello, tHello, opt)
}

// serveHello runs a server session whose opening Hello has already been
// read (tHello is its arrival time, T1 of the client's clock estimate) —
// the entry point for callers that dispatch on the first message
// themselves, like MultiServer's publisher/subscriber split.
func serveHello(conn io.ReadWriter, hello Hello, tHello time.Time, opt ServerOptions) error {
	if opt.Source == nil {
		return errors.New("stream: server needs a frame source")
	}
	if opt.Validate != nil {
		if err := opt.Validate(hello); err != nil {
			// Tell the client why before closing — a silent close is
			// indistinguishable from a network fault on their side.
			controlWrite(conn, opt.Metrics, opt.Log, opt.ControlTimeout, opt.Remote, "reject", func() error {
				return WriteReject(conn, Reject{Code: RejectBadHello, Reason: err.Error()})
			})
			return fmt.Errorf("stream: rejecting client: %w", err)
		}
	}
	// Version negotiation: min of what both sides speak. A v1 client gets
	// an Accept (and frames) in the original unversioned encoding.
	ver := NegotiateVersion(hello.Version)
	acc := opt.Accept
	if ver >= ProtocolV2 {
		acc.Version = ver
		acc.RecvUnixMicro = tHello.UnixMicro()
		acc.SendUnixMicro = time.Now().UnixMicro()
	} else {
		acc.Version, acc.RecvUnixMicro, acc.SendUnixMicro = 0, 0, 0
	}
	if ver >= ProtocolV4 {
		acc.Token = opt.ResumeToken
	} else {
		acc.Token = ""
	}
	if err := WriteAccept(conn, acc); err != nil {
		return fmt.Errorf("stream: writing accept: %w", err)
	}

	// Drain client messages (input events, stats reports, heartbeats, bye)
	// concurrently. clientBye distinguishes a clean protocol close from a
	// network failure in the session's closing log line. sendMu serializes
	// whole messages onto the socket: pong replies come from this read
	// goroutine while frames stream from the session loop, and a message is
	// two Writes (header, body) that must not interleave.
	var clientBye atomic.Bool
	var sendMu sync.Mutex
	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	// Read-side liveness (v4): the client heartbeats, so a silent
	// connection is a dead one. The deadline is re-armed before every read;
	// when it fires the session is reaped — the conn is closed, which also
	// unblocks a frame writer stuck on a blackholed socket.
	rd, canDeadline := conn.(interface{ SetReadDeadline(time.Time) error })
	liveness := ver >= ProtocolV4 && opt.IdleTimeout > 0 && canDeadline
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if liveness {
				rd.SetReadDeadline(time.Now().Add(opt.IdleTimeout))
			}
			m, err := ReadMsg(conn)
			if err != nil {
				if liveness && errors.Is(err, os.ErrDeadlineExceeded) {
					opt.Metrics.Counter("stream_sessions_reaped_total").Inc()
					opt.Log.Warn("stream: reaping session: no traffic (not even a heartbeat)",
						"session", opt.Remote, "idle", opt.IdleTimeout)
					if opt.OnReap != nil {
						opt.OnReap(opt.IdleTimeout)
					}
					if c, ok := conn.(io.Closer); ok {
						c.Close()
					}
				}
				return
			}
			switch m.Type {
			case MsgInput:
				if opt.OnInput != nil {
					opt.OnInput(*m.Input)
				}
			case MsgStats:
				if opt.OnStats != nil {
					opt.OnStats(*m.Stats)
				}
			case MsgPing:
				opt.Metrics.Counter("stream_pings_total").Inc()
				ping := *m.Ping
				sendMu.Lock()
				err := controlWrite(conn, opt.Metrics, opt.Log, opt.ControlTimeout, opt.Remote, "pong", func() error {
					return WritePong(conn, PongPacket{Seq: ping.Seq, EchoUnixMicro: ping.SendUnixMicro})
				})
				sendMu.Unlock()
				if err != nil {
					return
				}
			case MsgBye:
				clientBye.Store(true)
				opt.Metrics.Counter("stream_client_bye_total").Inc()
				return
			default:
				return // protocol violation: stop reading
			}
			select {
			case <-stopRead:
				return
			default:
			}
		}
	}()

	framesSent := opt.Metrics.Counter("stream_frames_sent_total")
	bytesSent := opt.Metrics.Counter("stream_bytes_sent_total")
	sendLat := opt.Metrics.Histogram("stream_frame_send_seconds", telemetry.LatencyBuckets())
	slowSend := opt.SlowSend
	if slowSend == 0 {
		slowSend = DefaultSlowSend
	}

	var sendErr error
	// Reused across frames so deadline accounting allocates nothing.
	var latScratch [2]frametrace.StageLatency
	for i := 0; opt.MaxFrames == 0 || i < opt.MaxFrames; i++ {
		tSrc := time.Now()
		payload, key, roi, err := opt.Source.NextFrame(i)
		dSrc := time.Since(tSrc)
		if err == io.EOF {
			break
		}
		if err != nil {
			sendErr = fmt.Errorf("stream: frame source: %w", err)
			break
		}
		pkt := FramePacket{Index: uint32(i), Keyenc: key, RoI: roi, Payload: payload}
		fid := opt.Flight.BeginFrame(i)
		opt.Flight.SetEncode(fid, roi, len(payload), len(payload))
		opt.Flight.Span(fid, "source", "source", tSrc, dSrc)
		t0 := time.Now()
		if ver >= ProtocolV2 {
			// The frame's wire identity: the server's flight ID (the
			// client recorder adopts it, so both dumps correlate) and the
			// server clock at send, from which the client computes the
			// clock-corrected end-to-end frame age.
			pkt.FlightID = fid
			pkt.SendUnixMicro = t0.UnixMicro()
		}
		if opt.Tap != nil {
			// The relay fan-out point: subscribers see the exact packet the
			// player gets (same index, flight ID, RoI), encoded once.
			opt.Tap(pkt)
		}
		sendMu.Lock()
		err = WriteFrame(conn, pkt)
		sendMu.Unlock()
		if err != nil {
			sendErr = fmt.Errorf("stream: writing frame %d: %w", i, err)
			break
		}
		d := time.Since(t0)
		opt.Flight.Span(fid, "send", "send", t0, d)
		// Frame production (render + detect + encode) plus the send are the
		// server's whole per-frame budget; accounting both against the
		// recorder's deadline makes an overloaded scheduler or a stalled
		// client socket visible as a miss streak on /metrics — the signal
		// the shed ladder and admission control key off.
		latScratch[0] = frametrace.StageLatency{Name: "source", D: dSrc}
		latScratch[1] = frametrace.StageLatency{Name: "send", D: d}
		opt.Flight.ObserveDeadline(fid, latScratch[:])
		if slowSend > 0 && d > slowSend {
			if ok, suppressed := slowSendLimit.Allow("slow_send:" + opt.Remote); ok {
				kv := []any{"session", opt.Remote, "frame", i, "flight", fid, "took", d,
					"bytes", len(payload), "roi_w", roi.W, "roi_h", roi.H}
				if suppressed > 0 {
					kv = append(kv, "suppressed", suppressed)
				}
				opt.Log.Warn("stream: slow send", kv...)
			}
		}
		sendLat.ObserveDuration(d)
		framesSent.Inc()
		bytesSent.Add(int64(len(payload)))
	}
	if sendErr == nil {
		sendMu.Lock()
		sendErr = WriteBye(conn)
		sendMu.Unlock()
	}
	close(stopRead)
	// A session that dies mid-send is either the client leaving politely
	// (its Bye raced our next frame) or the network failing; the closing
	// log line tells them apart so session logs are diagnosable.
	if opt.Remote != "" && sendErr != nil {
		if clientBye.Load() {
			opt.Log.Info("stream: client closed cleanly (bye received)", "session", opt.Remote)
		} else {
			opt.Log.Warn("stream: session ended without bye", "session", opt.Remote, "err", sendErr)
		}
	}
	// The read goroutine exits when the client sends Bye or the caller
	// closes the connection; do not block on it here.
	return sendErr
}

// NegotiateVersion returns the protocol version a server session runs at
// for a client that announced clientVer: the minimum of both sides, with 0
// (an unversioned v1 hello) mapping to v1.
func NegotiateVersion(clientVer int) int {
	if clientVer < ProtocolV2 {
		return ProtocolV1
	}
	return min(ProtocolVersion, clientVer)
}

// ClockSync is the client's Cristian-style estimate of the server clock,
// taken from the v2 handshake's timestamp exchange: Offset estimates
// serverClock − clientClock, and the estimate's error is bounded by RTT/2
// (the classic bound — the true offset lies within ±RTT/2 of the
// estimate, since the request and reply legs split the round trip
// unknowably).
type ClockSync struct {
	// Offset is the estimated serverClock − clientClock.
	Offset time.Duration
	// RTT is the handshake round trip minus the server's hold time — the
	// network component only, which bounds the offset estimate's error.
	RTT time.Duration
	// Synced reports whether a v2 timestamp exchange happened (false on
	// v1 sessions, where no correction is available).
	Synced bool
}

// ServerTime converts a server-clock timestamp (µs since the Unix epoch,
// as carried by v2 FramePackets) into the client's clock.
func (cs ClockSync) ServerTime(unixMicro int64) time.Time {
	return time.UnixMicro(unixMicro).Add(-cs.Offset)
}

// Client is the Moonlight-analogue session endpoint. Its write methods
// (SendInput, SendStats, Bye) are safe to call from different goroutines —
// a shutdown path sending Bye must not interleave bytes with a stats
// report in flight.
type Client struct {
	conn    io.ReadWriter
	writeMu sync.Mutex
	cfg     Accept
	sync    ClockSync

	pingSeq  uint32       // under writeMu
	rttMicro atomic.Int64 // latest heartbeat RTT, µs
	pongs    atomic.Uint32
}

// NewClient wraps an established connection.
func NewClient(conn io.ReadWriter) *Client { return &Client{conn: conn} }

// Handshake sends the Hello (the device's capability probe result) and
// returns the server's stream geometry. When the Hello announces v2 or
// later, the handshake also performs the clock exchange: the client's send
// time rides in the Hello, the server's receive/send pair rides back in
// the Accept, and the resulting offset + RTT estimate is available from
// Clock.
func (c *Client) Handshake(h Hello) (Accept, error) {
	t0 := time.Now()
	if h.Version >= ProtocolV2 && h.SendUnixMicro == 0 {
		h.SendUnixMicro = t0.UnixMicro()
	}
	c.writeMu.Lock()
	err := WriteHello(c.conn, h)
	c.writeMu.Unlock()
	if err != nil {
		return Accept{}, fmt.Errorf("stream: writing hello: %w", err)
	}
	sendUS := int64(0)
	if h.Version >= ProtocolV2 {
		sendUS = h.SendUnixMicro
	}
	return c.awaitAccept(sendUS)
}

// Subscribe attaches this client to an existing publish channel as a
// spectator (v3): instead of a Hello opening a game session, the Subscribe
// asks for the channel's cached geometry, the cached keyframe and the live
// GOP tail. The timestamp exchange is the same as Handshake's, so
// spectators get clock sync too. A missing channel comes back as a
// RejectedError with code RejectUnknownChannel.
func (c *Client) Subscribe(sub Subscribe) (Accept, error) {
	t0 := time.Now()
	if sub.Version == 0 {
		sub.Version = ProtocolVersion
	}
	if sub.SendUnixMicro == 0 {
		sub.SendUnixMicro = t0.UnixMicro()
	}
	c.writeMu.Lock()
	err := WriteSubscribe(c.conn, sub)
	c.writeMu.Unlock()
	if err != nil {
		return Accept{}, fmt.Errorf("stream: writing subscribe: %w", err)
	}
	return c.awaitAccept(sub.SendUnixMicro)
}

// awaitAccept reads the server's Accept (or Reject) and stores the stream
// geometry. When sendUS is non-zero (the client-clock send time of the
// opening message) and the server answered with a v2+ clock pair, it also
// completes the Cristian offset + RTT estimate.
func (c *Client) awaitAccept(sendUS int64) (Accept, error) {
	msg, err := ReadMsg(c.conn)
	t3 := time.Now()
	if err != nil {
		return Accept{}, fmt.Errorf("stream: reading accept: %w", err)
	}
	if msg.Type == MsgReject {
		return Accept{}, &RejectedError{
			Code:       msg.Reject.Code,
			Reason:     msg.Reject.Reason,
			RetryAfter: time.Duration(msg.Reject.RetryAfterMs) * time.Millisecond,
		}
	}
	if msg.Type != MsgAccept {
		return Accept{}, fmt.Errorf("%w: expected accept, got %v", ErrProtocol, msg.Type)
	}
	c.cfg = *msg.Accept
	if sendUS > 0 && c.cfg.Version >= ProtocolV2 && c.cfg.RecvUnixMicro > 0 {
		// NTP-style two-sample estimate: T0/T3 on the client clock, T1/T2
		// on the server's.
		t1 := c.cfg.RecvUnixMicro
		t2 := c.cfg.SendUnixMicro
		offUS := ((t1 - sendUS) + (t2 - t3.UnixMicro())) / 2
		rttUS := (t3.UnixMicro() - sendUS) - (t2 - t1)
		if rttUS < 0 {
			rttUS = 0
		}
		c.sync = ClockSync{
			Offset: time.Duration(offUS) * time.Microsecond,
			RTT:    time.Duration(rttUS) * time.Microsecond,
			Synced: true,
		}
	}
	return c.cfg, nil
}

// Config returns the negotiated stream geometry (zero before Handshake).
func (c *Client) Config() Accept { return c.cfg }

// Clock returns the handshake's clock-sync estimate (Synced false on v1
// sessions or before Handshake).
func (c *Client) Clock() ClockSync { return c.sync }

// RecvFrame returns the next frame packet, or io.EOF after the server's
// Bye. Heartbeat pongs arriving between frames are consumed here — the RTT
// sample they carry updates PingRTT and the read continues.
func (c *Client) RecvFrame() (FramePacket, error) {
	for {
		msg, err := ReadMsg(c.conn)
		if err != nil {
			return FramePacket{}, err
		}
		switch msg.Type {
		case MsgFrame:
			return *msg.Frame, nil
		case MsgBye:
			return FramePacket{}, io.EOF
		case MsgPong:
			if us := msg.Pong.EchoUnixMicro; us > 0 {
				rtt := time.Since(time.UnixMicro(us))
				if rtt < 0 {
					rtt = 0
				}
				c.rttMicro.Store(rtt.Microseconds())
			}
			c.pongs.Add(1)
		default:
			return FramePacket{}, fmt.Errorf("%w: expected frame, got %v", ErrProtocol, msg.Type)
		}
	}
}

// SendPing ships a liveness heartbeat (v4+ sessions): the server echoes the
// timestamp in a Pong, which RecvFrame consumes into PingRTT. Callers gate
// on Config().Version >= ProtocolV4 — a pre-v4 server stops reading its
// input path at the first message it does not understand.
func (c *Client) SendPing() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.pingSeq++
	return WritePing(c.conn, PingPacket{Seq: c.pingSeq, SendUnixMicro: time.Now().UnixMicro()})
}

// PingRTT returns the most recent heartbeat round trip and how many pongs
// have been observed (zero before the first).
func (c *Client) PingRTT() (time.Duration, int) {
	return time.Duration(c.rttMicro.Load()) * time.Microsecond, int(c.pongs.Load())
}

// SendInput ships a user-input event to the server.
func (c *Client) SendInput(in InputPacket) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteInput(c.conn, in)
}

// SendStats ships a telemetry backchannel report to the server. Only
// meaningful on v2 sessions — a v1 server stops reading its input path at
// the first message it does not understand, so callers should gate on
// Config().Version.
func (c *Client) SendStats(st StatsPacket) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteStats(c.conn, st)
}

// Bye announces a clean shutdown to the server, so its session log can
// distinguish a deliberate close from a network failure. The connection
// stays open; the caller closes it.
func (c *Client) Bye() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteBye(c.conn)
}
