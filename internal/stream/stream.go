// Package stream implements the wire protocol between the GameStreamSR
// server and client — the role Sunshine and Moonlight (NVIDIA GameStream
// protocol) play in the paper's software setup (§V-A). It is a small
// length-prefixed message protocol over any reliable byte stream:
//
//	client → server  Hello     (device name, negotiated RoI window, scale,
//	                            protocol version + client clock, v2;
//	                            publish-channel name, v3)
//	client → server  Subscribe (spectate an existing publish channel instead
//	                            of opening a game session, v3)
//	server → client  Accept    (stream geometry: resolution, GOP, quantizer,
//	                            negotiated version + server clock pair, v2)
//	server → client  Reject    (refusal: reason code + detail, then close)
//	server → client  Frame     (index, codec frame type, RoI coords, payload;
//	                            v2 adds the server's flight ID + send time)
//	client → server  Input     (sequence number, opaque input event payload)
//	client → server  Stats     (periodic client-side latency/age percentiles
//	                            and drop counts — the telemetry backchannel)
//	either direction Bye       (clean shutdown)
//
// The RoI coordinates riding alongside each frame are the paper's Fig. 6
// step ❺: the depth-guided RoI is computed on the server and shipped with
// the compressed frame so the client knows which region to route to the NPU.
//
// # Versioning (DESIGN.md §13)
//
// The handshake negotiates a protocol version. A v2 client appends its
// version and a send timestamp to the Hello as trailing uvarints; a v2
// server answers with the negotiated version (min of both sides) plus a
// receive/send server-clock pair, giving the client a Cristian-style
// clock-offset + RTT estimate in a single round trip. The v1 encodings are
// byte-identical to the pre-versioning wire format, and the v2 parsers
// accept (and ignore) unknown trailing fields, so a v1 peer on either side
// of a v2 peer negotiates down to a pure-v1 session. Frame extensions
// (flight ID, send timestamp) are flagged in the frame's flags byte and
// only sent on sessions that negotiated v2, so a v1 client never sees
// bytes it cannot parse.
//
// Version 3 adds the publish/subscribe relay (DESIGN.md §14): a Hello may
// carry a channel name (registering its session as the channel's
// publisher), and a Subscribe message opens a spectator session on an
// existing channel instead of a game session. The channel field rides
// after the v2 extension, so a v3 Hello without a channel is one length
// byte longer than a v2 one and a v1/v2 Hello is byte-identical to before.
//
// Version 4 adds liveness and resume (DESIGN.md §15): MsgPing/MsgPong
// heartbeats (either direction; the receiver echoes the ping's sequence
// number and timestamp so the pinger gets an RTT sample from its own
// clock), an opaque resume token issued in the Accept and replayed in a
// reconnecting Hello so the server correlates the two connections as one
// logical session — and, for a publisher, reclaims its parked relay
// channel — and an optional retry-after hint on Busy rejects. The token
// fields ride after the v3 extension with the same absent-field leniency:
// a v4 Hello without a token is one length byte longer than a v3 one, and
// a v3 peer on either side negotiates the whole extension away.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"gamestreamsr/internal/frame"
)

// Protocol versions. Version 1 is the original unversioned wire format;
// version 2 adds handshake clock exchange, per-frame flight IDs + send
// timestamps, and the Stats backchannel; version 3 adds the
// publish/subscribe relay (channel field in Hello, Subscribe message);
// version 4 adds Ping/Pong heartbeats, resume tokens and Busy retry-after.
const (
	ProtocolV1 = 1
	ProtocolV2 = 2
	ProtocolV3 = 3
	ProtocolV4 = 4
	// ProtocolVersion is the highest version this build speaks.
	ProtocolVersion = ProtocolV4
)

// MsgType identifies a protocol message.
type MsgType uint8

// Message types.
const (
	MsgHello MsgType = iota + 1
	MsgAccept
	MsgFrame
	MsgInput
	MsgBye
	MsgReject
	MsgStats
	MsgSubscribe
	MsgPing
	MsgPong
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgAccept:
		return "accept"
	case MsgFrame:
		return "frame"
	case MsgInput:
		return "input"
	case MsgBye:
		return "bye"
	case MsgReject:
		return "reject"
	case MsgStats:
		return "stats"
	case MsgSubscribe:
		return "subscribe"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// MaxBody bounds a message body; anything larger is rejected as corrupt.
const MaxBody = 16 << 20

// ErrProtocol wraps all wire-format violations.
var ErrProtocol = errors.New("stream: protocol error")

// Hello is the client's opening message: its identity and the §IV-B1
// capability probe result (Fig. 6 step ❶). Version ≤ 1 produces the
// original wire encoding; version ≥ 2 appends the version and the client's
// send timestamp, which the server echoes into the Accept's clock pair.
type Hello struct {
	Device    string
	RoIWindow int
	Scale     int
	// Version is the highest protocol version the client speaks (0 and 1
	// both mean the original unversioned format).
	Version int
	// SendUnixMicro is the client's clock (µs since the Unix epoch) when
	// the Hello was written — T0 of the Cristian offset estimate. Filled
	// by Client.Handshake on v2 handshakes; 0 on v1.
	SendUnixMicro int64
	// Channel, when non-empty on a v3+ hello, registers this session as
	// the publisher of the named relay channel: spectators can then attach
	// to the same encoded GOP stream with a Subscribe. Empty means a solo
	// session (the pre-v3 behaviour).
	Channel string
	// ResumeToken, when non-empty on a v4+ hello, replays the opaque token
	// a previous Accept issued: the server correlates this connection with
	// the earlier session (flight records, per-session metrics) and, if the
	// session published a channel that is still parked within its grace
	// window, hands the channel back with its subscribers intact. Empty
	// means a fresh session.
	ResumeToken string
}

// RejectCode classifies why the server refused a session.
type RejectCode uint8

// Reject codes.
const (
	// RejectBusy: admission control found no SLO headroom — retry later.
	RejectBusy RejectCode = iota + 1
	// RejectCapacity: the hard session cap is reached.
	RejectCapacity
	// RejectBadHello: the Hello failed validation.
	RejectBadHello
	// RejectUnknownChannel: a Subscribe named a channel with no live
	// publisher.
	RejectUnknownChannel
	// RejectChannelTaken: a Hello tried to publish under a channel name
	// that already has a live publisher.
	RejectChannelTaken
)

func (c RejectCode) String() string {
	switch c {
	case RejectBusy:
		return "busy"
	case RejectCapacity:
		return "capacity"
	case RejectBadHello:
		return "bad-hello"
	case RejectUnknownChannel:
		return "unknown-channel"
	case RejectChannelTaken:
		return "channel-taken"
	default:
		return fmt.Sprintf("RejectCode(%d)", uint8(c))
	}
}

// Reject is the server's refusal: sent instead of Accept (or instead of a
// silent close before the handshake), then the connection closes.
type Reject struct {
	Code   RejectCode
	Reason string
	// RetryAfterMs, when non-zero on a Busy reject, is the server's hint
	// for how long the client should back off before redialling
	// (milliseconds). Only encoded to peers that announced v4+ — older
	// parsers treat trailing bytes on a Reject as corruption.
	RetryAfterMs uint32
}

// RejectedError is what Client.Handshake returns when the server answered
// with a Reject — typed so callers can distinguish "busy, retry later"
// from protocol failures, and carrying the server's human-readable reason
// so operators see *why* ("no SLO headroom: p99 …"), not just the code.
type RejectedError struct {
	Code   RejectCode
	Reason string
	// RetryAfter is the server-suggested redial delay (0 when the server
	// gave none); meaningful on RejectBusy.
	RetryAfter time.Duration
}

func (e *RejectedError) Error() string {
	s := fmt.Sprintf("stream: rejected (%v)", e.Code)
	if e.Reason != "" {
		s += ": " + e.Reason
	}
	if e.RetryAfter > 0 {
		s += fmt.Sprintf(" (retry after %v)", e.RetryAfter)
	}
	return s
}

// Accept is the server's handshake reply describing the stream. Version 0
// produces the original wire encoding (what a v1 session uses); version ≥ 2
// appends the negotiated version and the server's receive/send clock pair
// (T1, T2), completing the client's offset + RTT estimate.
type Accept struct {
	Width, Height int
	GOPSize       int
	QStep         int
	// Version is the negotiated protocol version (0 on v1 sessions).
	Version int
	// RecvUnixMicro is the server's clock when the Hello arrived (T1).
	RecvUnixMicro int64
	// SendUnixMicro is the server's clock when the Accept was written (T2).
	SendUnixMicro int64
	// Token is the opaque resume token (v4+): a reconnecting client
	// replays it in its Hello so the server correlates the connections as
	// one logical session and a publisher can reclaim its parked channel.
	// Empty on pre-v4 sessions or when the server issues none.
	Token string
}

// FramePacket carries one coded frame plus its RoI coordinates. On v2
// sessions it also carries the server's flight-recorder frame ID and the
// server clock at send time, so the frame keeps one identity from the
// server's encode spans to the client's present span and the client can
// compute a clock-corrected end-to-end frame age.
type FramePacket struct {
	Index  uint32
	Keyenc bool // reference (intra) frame
	// FlightID is the server flight recorder's ID for this frame (0 when
	// the server records no flight, or on v1 sessions). The client's
	// recorder adopts it, so the two processes' dumps correlate by ID.
	FlightID uint64
	// SendUnixMicro is the server's clock (µs since the Unix epoch) just
	// before the frame hit the socket; 0 on v1 sessions.
	SendUnixMicro int64
	RoI           frame.Rect
	Payload       []byte
}

// frame flags-byte bits.
const (
	frameFlagKey      = 1 << 0 // reference (intra) frame
	frameFlagExtended = 1 << 1 // flight ID + send timestamp follow
)

// InputPacket carries one user-input event.
type InputPacket struct {
	Seq     uint32
	Payload []byte
}

// StatsPacket is the telemetry backchannel: a periodic client → server
// report of client-observed quality, piggybacked on the input path. The
// percentiles are computed over the client's recent window (WindowFrames
// frames); Dropped and Misses are cumulative for the session, so the
// server can difference successive reports.
type StatsPacket struct {
	Seq          uint32
	WindowFrames uint32 // frames in the percentile window of this report
	Dropped      uint32 // cumulative frames lost (index gaps + decode failures)
	Misses       uint32 // cumulative client-side deadline misses
	// Client-side stage latencies over the window.
	DecodeP50, DecodeP99 time.Duration
	SRP50, SRP99         time.Duration
	// End-to-end frame age (server send → client present, clock-offset
	// corrected) over the window.
	AgeP50, AgeP99 time.Duration
}

// Subscribe is a v3 client's request to spectate an existing publish
// channel instead of opening a game session: the server replies with the
// channel's cached Accept geometry, replays the cached keyframe and fans
// the live GOP tail out to the subscriber. Like a v3 Hello it carries the
// client's version and send timestamp, so spectators get the same clock
// sync as players.
type Subscribe struct {
	// Channel names the publish channel to attach to (required).
	Channel string
	// Device identifies the spectator (shows up in logs and flight dumps).
	Device string
	// Version is the highest protocol version the subscriber speaks.
	Version int
	// SendUnixMicro is the subscriber's clock when the Subscribe was
	// written — T0 of its Cristian offset estimate.
	SendUnixMicro int64
}

// PingPacket is a v4 liveness probe. Either endpoint may send one at any
// point after the handshake; the receiver must answer with a Pong echoing
// Seq and SendUnixMicro. The timestamp is the *pinger's* clock — the
// responder never interprets it, so RTT sampling needs no clock sync.
type PingPacket struct {
	Seq           uint32
	SendUnixMicro int64
}

// PongPacket answers a Ping: Seq and EchoUnixMicro are copied from the
// ping, so the pinger computes RTT = now − EchoUnixMicro on its own clock
// and matches responses to probes by sequence number.
type PongPacket struct {
	Seq           uint32
	EchoUnixMicro int64
}

// writeMsg frames a message body.
func writeMsg(w io.Writer, t MsgType, body []byte) error {
	if len(body) > MaxBody {
		return fmt.Errorf("%w: body %d exceeds limit", ErrProtocol, len(body))
	}
	hdr := make([]byte, 1, 1+binary.MaxVarintLen32)
	hdr[0] = byte(t)
	hdr = binary.AppendUvarint(hdr, uint64(len(body)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(body) == 0 {
		// Skip empty writes: synchronous transports (net.Pipe) block a
		// zero-length Write until a matching Read that will never come.
		return nil
	}
	_, err := w.Write(body)
	return err
}

// readMsg reads one framed message.
func readMsg(r io.Reader) (MsgType, []byte, error) {
	var tb [1]byte
	if _, err := io.ReadFull(r, tb[:]); err != nil {
		return 0, nil, err
	}
	br := byteReader{r: r}
	n, err := binary.ReadUvarint(&br)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: bad length: %v", ErrProtocol, err)
	}
	if n > MaxBody {
		return 0, nil, fmt.Errorf("%w: body %d exceeds limit", ErrProtocol, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: short body: %v", ErrProtocol, err)
	}
	return MsgType(tb[0]), body, nil
}

type byteReader struct{ r io.Reader }

func (b *byteReader) ReadByte() (byte, error) {
	var buf [1]byte
	_, err := io.ReadFull(b.r, buf[:])
	return buf[0], err
}

// --- message bodies -----------------------------------------------------------

// WriteHello sends a Hello message. Version ≤ 1 emits the original v1
// encoding (exactly the pre-versioning bytes); version ≥ 2 appends the
// version and send timestamp as trailing uvarints, which v1-era parsers of
// this package reject but the v2 parser accepts from either era; version
// ≥ 3 additionally appends the publish-channel name (length + raw bytes);
// version ≥ 4 appends the resume token the same way.
func WriteHello(w io.Writer, h Hello) error {
	if len(h.Device) > 255 {
		return fmt.Errorf("%w: device name too long", ErrProtocol)
	}
	if len(h.Channel) > 255 {
		return fmt.Errorf("%w: channel name too long", ErrProtocol)
	}
	if len(h.ResumeToken) > 255 {
		return fmt.Errorf("%w: resume token too long", ErrProtocol)
	}
	body := []byte{byte(len(h.Device))}
	body = append(body, h.Device...)
	body = binary.AppendUvarint(body, uint64(h.RoIWindow))
	body = binary.AppendUvarint(body, uint64(h.Scale))
	if h.Version >= ProtocolV2 {
		body = binary.AppendUvarint(body, uint64(h.Version))
		body = binary.AppendUvarint(body, clampMicro(h.SendUnixMicro))
	}
	if h.Version >= ProtocolV3 {
		body = binary.AppendUvarint(body, uint64(len(h.Channel)))
		body = append(body, h.Channel...)
	}
	if h.Version >= ProtocolV4 {
		body = binary.AppendUvarint(body, uint64(len(h.ResumeToken)))
		body = append(body, h.ResumeToken...)
	}
	return writeMsg(w, MsgHello, body)
}

func parseHello(body []byte) (Hello, error) {
	var h Hello
	if len(body) < 1 {
		return h, fmt.Errorf("%w: empty hello", ErrProtocol)
	}
	n := int(body[0])
	body = body[1:]
	if len(body) < n {
		return h, fmt.Errorf("%w: truncated device name", ErrProtocol)
	}
	h.Device = string(body[:n])
	body = body[n:]
	// The first two uvarints are required; the next two are the v2
	// extension: version, then the client's send timestamp (a v1 hello
	// leaves Version 0, meaning unversioned).
	vals, rest, err := readUvarintsUpTo(body, 4)
	if err != nil {
		return h, err
	}
	if len(vals) < 2 {
		return h, fmt.Errorf("%w: %d hello fields, want at least 2", ErrProtocol, len(vals))
	}
	h.RoIWindow = int(vals[0])
	h.Scale = int(vals[1])
	if len(vals) >= 3 {
		h.Version = int(vals[2])
	}
	if len(vals) >= 4 {
		h.SendUnixMicro = int64(vals[3])
	}
	switch {
	case h.Version >= ProtocolV3 && len(rest) > 0:
		// The v3 extension: channel name as uvarint length + raw bytes.
		// Absent means no channel (an older build announcing a future
		// version never wrote one).
		var m int
		h.Channel, rest, m = readLenBytes(rest)
		if m <= 0 {
			return h, fmt.Errorf("%w: truncated channel name", ErrProtocol)
		}
		if h.Version >= ProtocolV4 && len(rest) > 0 {
			// The v4 extension: resume token, same length + raw-bytes
			// shape. Absent means no token (a v3 build announcing a
			// future version never wrote one). Bytes beyond the token
			// belong to a future version — ignored, the leniency v5 will
			// rely on.
			h.ResumeToken, rest, m = readLenBytes(rest)
			if m <= 0 {
				return h, fmt.Errorf("%w: truncated resume token", ErrProtocol)
			}
		}
		_ = rest
	case len(rest) > 0:
		// Pre-v3 leniency: trailing fields must still be well-formed
		// uvarints (newer versions append fields, not arbitrary bytes).
		if _, err := readUvarintsAll(rest, 0); err != nil {
			return h, err
		}
	}
	if h.RoIWindow <= 0 || h.Scale <= 0 {
		return h, fmt.Errorf("%w: non-positive hello fields", ErrProtocol)
	}
	return h, nil
}

// readLenBytes reads one uvarint-length-prefixed byte string, returning it
// plus the unread remainder. m <= 0 signals truncation (a length promising
// more bytes than the body holds, or a malformed length varint).
func readLenBytes(body []byte) (s string, rest []byte, m int) {
	n, m := binary.Uvarint(body)
	if m <= 0 {
		return "", nil, -1
	}
	body = body[m:]
	if uint64(len(body)) < n {
		return "", nil, -1
	}
	return string(body[:n]), body[n:], m
}

// WriteSubscribe sends a Subscribe message (v3): channel + device as
// length-prefixed strings, then version + send timestamp as uvarints, with
// the same trailing-field leniency the versioned Hello has.
func WriteSubscribe(w io.Writer, s Subscribe) error {
	if s.Channel == "" {
		return fmt.Errorf("%w: subscribe without channel", ErrProtocol)
	}
	if len(s.Channel) > 255 {
		return fmt.Errorf("%w: channel name too long", ErrProtocol)
	}
	if len(s.Device) > 255 {
		return fmt.Errorf("%w: device name too long", ErrProtocol)
	}
	body := []byte{byte(len(s.Channel))}
	body = append(body, s.Channel...)
	body = append(body, byte(len(s.Device)))
	body = append(body, s.Device...)
	body = binary.AppendUvarint(body, uint64(s.Version))
	body = binary.AppendUvarint(body, clampMicro(s.SendUnixMicro))
	return writeMsg(w, MsgSubscribe, body)
}

func parseSubscribe(body []byte) (Subscribe, error) {
	var s Subscribe
	if len(body) < 1 {
		return s, fmt.Errorf("%w: empty subscribe", ErrProtocol)
	}
	n := int(body[0])
	body = body[1:]
	if len(body) < n {
		return s, fmt.Errorf("%w: truncated channel name", ErrProtocol)
	}
	s.Channel = string(body[:n])
	body = body[n:]
	if s.Channel == "" {
		return s, fmt.Errorf("%w: subscribe without channel", ErrProtocol)
	}
	if len(body) < 1 {
		return s, fmt.Errorf("%w: truncated subscribe", ErrProtocol)
	}
	n = int(body[0])
	body = body[1:]
	if len(body) < n {
		return s, fmt.Errorf("%w: truncated device name", ErrProtocol)
	}
	s.Device = string(body[:n])
	body = body[n:]
	vals, err := readUvarintsAll(body, 2)
	if err != nil {
		return s, err
	}
	s.Version = int(vals[0])
	s.SendUnixMicro = int64(vals[1])
	return s, nil
}

// WriteAccept sends an Accept message. Version 0 (and 1) emits the
// original v1 encoding; version ≥ 2 appends the negotiated version and the
// server's receive/send clock pair; version ≥ 4 appends the resume token
// (length + raw bytes).
func WriteAccept(w io.Writer, a Accept) error {
	if len(a.Token) > 255 {
		return fmt.Errorf("%w: resume token too long", ErrProtocol)
	}
	var body []byte
	for _, v := range []int{a.Width, a.Height, a.GOPSize, a.QStep} {
		body = binary.AppendUvarint(body, uint64(v))
	}
	if a.Version >= ProtocolV2 {
		body = binary.AppendUvarint(body, uint64(a.Version))
		body = binary.AppendUvarint(body, clampMicro(a.RecvUnixMicro))
		body = binary.AppendUvarint(body, clampMicro(a.SendUnixMicro))
	}
	if a.Version >= ProtocolV4 {
		body = binary.AppendUvarint(body, uint64(len(a.Token)))
		body = append(body, a.Token...)
	}
	return writeMsg(w, MsgAccept, body)
}

func parseAccept(body []byte) (Accept, error) {
	vals, rest, err := readUvarintsUpTo(body, 7)
	if err != nil {
		return Accept{}, err
	}
	if len(vals) < 4 {
		return Accept{}, fmt.Errorf("%w: %d accept fields, want at least 4", ErrProtocol, len(vals))
	}
	a := Accept{Width: int(vals[0]), Height: int(vals[1]), GOPSize: int(vals[2]), QStep: int(vals[3])}
	if len(vals) >= 5 {
		a.Version = int(vals[4])
	}
	if len(vals) >= 7 {
		a.RecvUnixMicro = int64(vals[5])
		a.SendUnixMicro = int64(vals[6])
	}
	switch {
	case a.Version >= ProtocolV4 && len(rest) > 0:
		// The v4 extension: resume token. Absent means none issued; bytes
		// beyond it belong to a future version and are ignored.
		var m int
		a.Token, _, m = readLenBytes(rest)
		if m <= 0 {
			return Accept{}, fmt.Errorf("%w: truncated resume token", ErrProtocol)
		}
	case len(rest) > 0:
		// Pre-v4 leniency: trailing fields must still be well-formed
		// uvarints (newer versions append fields, not arbitrary bytes).
		if _, err := readUvarintsAll(rest, 0); err != nil {
			return Accept{}, err
		}
	}
	if a.Width <= 0 || a.Height <= 0 || a.GOPSize <= 0 || a.QStep <= 0 {
		return Accept{}, fmt.Errorf("%w: non-positive accept fields", ErrProtocol)
	}
	return a, nil
}

// clampMicro guards timestamp encoding: timestamps ride as uvarints, so a
// negative (pre-epoch, i.e. corrupt) value encodes as 0 rather than 2^64-µs.
func clampMicro(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// WriteReject sends a Reject message. A non-zero RetryAfterMs rides as a
// trailing uvarint; callers must only set it for peers that announced v4+
// (older parsers reject trailing bytes as corruption).
func WriteReject(w io.Writer, rej Reject) error {
	if len(rej.Reason) > 255 {
		rej.Reason = rej.Reason[:255]
	}
	body := []byte{byte(rej.Code), byte(len(rej.Reason))}
	body = append(body, rej.Reason...)
	if rej.RetryAfterMs > 0 {
		body = binary.AppendUvarint(body, uint64(rej.RetryAfterMs))
	}
	return writeMsg(w, MsgReject, body)
}

func parseReject(body []byte) (Reject, error) {
	if len(body) < 2 {
		return Reject{}, fmt.Errorf("%w: truncated reject", ErrProtocol)
	}
	rej := Reject{Code: RejectCode(body[0])}
	n := int(body[1])
	if len(body) < 2+n {
		return Reject{}, fmt.Errorf("%w: reject reason length %d > %d", ErrProtocol, n, len(body)-2)
	}
	rej.Reason = string(body[2 : 2+n])
	if rest := body[2+n:]; len(rest) > 0 {
		// The v4 extension: retry-after hint, then future-version leniency.
		vals, err := readUvarintsAll(rest, 1)
		if err != nil {
			return Reject{}, err
		}
		rej.RetryAfterMs = uint32(vals[0])
	}
	return rej, nil
}

// WritePing sends a liveness probe (v4).
func WritePing(w io.Writer, p PingPacket) error {
	body := binary.AppendUvarint(nil, uint64(p.Seq))
	body = binary.AppendUvarint(body, clampMicro(p.SendUnixMicro))
	return writeMsg(w, MsgPing, body)
}

func parsePing(body []byte) (PingPacket, error) {
	vals, err := readUvarintsAll(body, 2)
	if err != nil {
		return PingPacket{}, err
	}
	return PingPacket{Seq: uint32(vals[0]), SendUnixMicro: int64(vals[1])}, nil
}

// WritePong answers a Ping (v4), echoing its sequence number and
// timestamp.
func WritePong(w io.Writer, p PongPacket) error {
	body := binary.AppendUvarint(nil, uint64(p.Seq))
	body = binary.AppendUvarint(body, clampMicro(p.EchoUnixMicro))
	return writeMsg(w, MsgPong, body)
}

func parsePong(body []byte) (PongPacket, error) {
	vals, err := readUvarintsAll(body, 2)
	if err != nil {
		return PongPacket{}, err
	}
	return PongPacket{Seq: uint32(vals[0]), EchoUnixMicro: int64(vals[1])}, nil
}

// WriteFrame sends a FramePacket. When the packet carries trace identity
// (a flight ID or send timestamp — set only on v2 sessions), the flags
// byte's extension bit is set and the two fields ride between the flags
// and the RoI; a plain packet is byte-identical to the v1 encoding.
func WriteFrame(w io.Writer, f FramePacket) error {
	body := binary.AppendUvarint(nil, uint64(f.Index))
	extended := f.FlightID != 0 || f.SendUnixMicro != 0
	var flags byte
	if f.Keyenc {
		flags |= frameFlagKey
	}
	if extended {
		flags |= frameFlagExtended
	}
	body = append(body, flags)
	if extended {
		body = binary.AppendUvarint(body, f.FlightID)
		body = binary.AppendUvarint(body, clampMicro(f.SendUnixMicro))
	}
	for _, v := range []int{f.RoI.X, f.RoI.Y, f.RoI.W, f.RoI.H} {
		body = binary.AppendUvarint(body, uint64(v))
	}
	body = binary.AppendUvarint(body, uint64(len(f.Payload)))
	body = append(body, f.Payload...)
	return writeMsg(w, MsgFrame, body)
}

func parseFrame(body []byte) (FramePacket, error) {
	var f FramePacket
	idx, n := binary.Uvarint(body)
	if n <= 0 {
		return f, fmt.Errorf("%w: bad frame index", ErrProtocol)
	}
	f.Index = uint32(idx)
	body = body[n:]
	if len(body) < 1 {
		return f, fmt.Errorf("%w: truncated frame flags", ErrProtocol)
	}
	flags := body[0]
	f.Keyenc = flags&frameFlagKey != 0
	body = body[1:]
	if flags&frameFlagExtended != 0 {
		vals, rest, err := readUvarintsRest(body, 2)
		if err != nil {
			return f, err
		}
		f.FlightID = vals[0]
		f.SendUnixMicro = int64(vals[1])
		body = rest
	}
	vals, rest, err := readUvarintsRest(body, 5)
	if err != nil {
		return f, err
	}
	f.RoI = frame.Rect{X: int(vals[0]), Y: int(vals[1]), W: int(vals[2]), H: int(vals[3])}
	plen := int(vals[4])
	if plen != len(rest) {
		return f, fmt.Errorf("%w: payload length %d != %d", ErrProtocol, plen, len(rest))
	}
	f.Payload = rest
	return f, nil
}

// WriteInput sends an InputPacket.
func WriteInput(w io.Writer, in InputPacket) error {
	body := binary.AppendUvarint(nil, uint64(in.Seq))
	body = binary.AppendUvarint(body, uint64(len(in.Payload)))
	body = append(body, in.Payload...)
	return writeMsg(w, MsgInput, body)
}

func parseInput(body []byte) (InputPacket, error) {
	var in InputPacket
	vals, rest, err := readUvarintsRest(body, 2)
	if err != nil {
		return in, err
	}
	in.Seq = uint32(vals[0])
	if int(vals[1]) != len(rest) {
		return in, fmt.Errorf("%w: input payload length mismatch", ErrProtocol)
	}
	in.Payload = rest
	return in, nil
}

// WriteBye sends a Bye message.
func WriteBye(w io.Writer) error { return writeMsg(w, MsgBye, nil) }

// WriteStats sends a StatsPacket (the client → server backchannel).
func WriteStats(w io.Writer, st StatsPacket) error {
	body := binary.AppendUvarint(nil, uint64(st.Seq))
	body = binary.AppendUvarint(body, uint64(st.WindowFrames))
	body = binary.AppendUvarint(body, uint64(st.Dropped))
	body = binary.AppendUvarint(body, uint64(st.Misses))
	for _, d := range []time.Duration{st.DecodeP50, st.DecodeP99, st.SRP50, st.SRP99, st.AgeP50, st.AgeP99} {
		body = binary.AppendUvarint(body, clampMicro(int64(d/time.Microsecond)))
	}
	return writeMsg(w, MsgStats, body)
}

func parseStats(body []byte) (StatsPacket, error) {
	vals, err := readUvarints(body, 10)
	if err != nil {
		return StatsPacket{}, err
	}
	us := func(v uint64) time.Duration { return time.Duration(v) * time.Microsecond }
	return StatsPacket{
		Seq:          uint32(vals[0]),
		WindowFrames: uint32(vals[1]),
		Dropped:      uint32(vals[2]),
		Misses:       uint32(vals[3]),
		DecodeP50:    us(vals[4]), DecodeP99: us(vals[5]),
		SRP50: us(vals[6]), SRP99: us(vals[7]),
		AgeP50: us(vals[8]), AgeP99: us(vals[9]),
	}, nil
}

func readUvarints(body []byte, n int) ([]uint64, error) {
	vals, rest, err := readUvarintsRest(body, n)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrProtocol, len(rest))
	}
	return vals, nil
}

// readUvarintsAll reads at least min uvarints and then as many more as the
// body holds — the lenient shape versioned messages use, where trailing
// fields belong to newer versions and must parse cleanly, not fatally.
func readUvarintsAll(body []byte, min int) ([]uint64, error) {
	var vals []uint64
	for len(body) > 0 {
		v, m := binary.Uvarint(body)
		if m <= 0 {
			return nil, fmt.Errorf("%w: truncated varint field %d", ErrProtocol, len(vals))
		}
		vals = append(vals, v)
		body = body[m:]
	}
	if len(vals) < min {
		return nil, fmt.Errorf("%w: %d fields, want at least %d", ErrProtocol, len(vals), min)
	}
	return vals, nil
}

// readUvarintsUpTo reads up to max uvarints, stopping early when the body
// runs out, and returns them plus the unread remainder — the shape of a
// versioned message whose tail switches from uvarints to raw bytes.
func readUvarintsUpTo(body []byte, max int) ([]uint64, []byte, error) {
	vals := make([]uint64, 0, max)
	for len(vals) < max && len(body) > 0 {
		v, m := binary.Uvarint(body)
		if m <= 0 {
			return nil, nil, fmt.Errorf("%w: truncated varint field %d", ErrProtocol, len(vals))
		}
		vals = append(vals, v)
		body = body[m:]
	}
	return vals, body, nil
}

func readUvarintsRest(body []byte, n int) ([]uint64, []byte, error) {
	vals := make([]uint64, n)
	for i := 0; i < n; i++ {
		v, m := binary.Uvarint(body)
		if m <= 0 {
			return nil, nil, fmt.Errorf("%w: truncated varint field %d", ErrProtocol, i)
		}
		vals[i] = v
		body = body[m:]
	}
	return vals, body, nil
}

// Msg is a decoded protocol message; exactly one field is set.
type Msg struct {
	Type      MsgType
	Hello     *Hello
	Accept    *Accept
	Frame     *FramePacket
	Input     *InputPacket
	Reject    *Reject
	Stats     *StatsPacket
	Subscribe *Subscribe
	Ping      *PingPacket
	Pong      *PongPacket
}

// ReadMsg reads and decodes the next message from r.
func ReadMsg(r io.Reader) (Msg, error) {
	t, body, err := readMsg(r)
	if err != nil {
		return Msg{}, err
	}
	out := Msg{Type: t}
	switch t {
	case MsgHello:
		h, err := parseHello(body)
		if err != nil {
			return Msg{}, err
		}
		out.Hello = &h
	case MsgAccept:
		a, err := parseAccept(body)
		if err != nil {
			return Msg{}, err
		}
		out.Accept = &a
	case MsgFrame:
		f, err := parseFrame(body)
		if err != nil {
			return Msg{}, err
		}
		out.Frame = &f
	case MsgInput:
		in, err := parseInput(body)
		if err != nil {
			return Msg{}, err
		}
		out.Input = &in
	case MsgBye:
	case MsgReject:
		rej, err := parseReject(body)
		if err != nil {
			return Msg{}, err
		}
		out.Reject = &rej
	case MsgStats:
		st, err := parseStats(body)
		if err != nil {
			return Msg{}, err
		}
		out.Stats = &st
	case MsgSubscribe:
		sub, err := parseSubscribe(body)
		if err != nil {
			return Msg{}, err
		}
		out.Subscribe = &sub
	case MsgPing:
		p, err := parsePing(body)
		if err != nil {
			return Msg{}, err
		}
		out.Ping = &p
	case MsgPong:
		p, err := parsePong(body)
		if err != nil {
			return Msg{}, err
		}
		out.Pong = &p
	default:
		return Msg{}, fmt.Errorf("%w: unknown message type %d", ErrProtocol, t)
	}
	return out, nil
}
