// Package stream implements the wire protocol between the GameStreamSR
// server and client — the role Sunshine and Moonlight (NVIDIA GameStream
// protocol) play in the paper's software setup (§V-A). It is a small
// length-prefixed message protocol over any reliable byte stream:
//
//	client → server  Hello   (device name, negotiated RoI window, scale)
//	server → client  Accept  (stream geometry: resolution, GOP, quantizer)
//	server → client  Reject  (refusal: reason code + detail, then close)
//	server → client  Frame   (index, codec frame type, RoI coords, payload)
//	client → server  Input   (sequence number, opaque input event payload)
//	either direction Bye     (clean shutdown)
//
// The RoI coordinates riding alongside each frame are the paper's Fig. 6
// step ❺: the depth-guided RoI is computed on the server and shipped with
// the compressed frame so the client knows which region to route to the NPU.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"gamestreamsr/internal/frame"
)

// MsgType identifies a protocol message.
type MsgType uint8

// Message types.
const (
	MsgHello MsgType = iota + 1
	MsgAccept
	MsgFrame
	MsgInput
	MsgBye
	MsgReject
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgAccept:
		return "accept"
	case MsgFrame:
		return "frame"
	case MsgInput:
		return "input"
	case MsgBye:
		return "bye"
	case MsgReject:
		return "reject"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// MaxBody bounds a message body; anything larger is rejected as corrupt.
const MaxBody = 16 << 20

// ErrProtocol wraps all wire-format violations.
var ErrProtocol = errors.New("stream: protocol error")

// Hello is the client's opening message: its identity and the §IV-B1
// capability probe result (Fig. 6 step ❶).
type Hello struct {
	Device    string
	RoIWindow int
	Scale     int
}

// RejectCode classifies why the server refused a session.
type RejectCode uint8

// Reject codes.
const (
	// RejectBusy: admission control found no SLO headroom — retry later.
	RejectBusy RejectCode = iota + 1
	// RejectCapacity: the hard session cap is reached.
	RejectCapacity
	// RejectBadHello: the Hello failed validation.
	RejectBadHello
)

func (c RejectCode) String() string {
	switch c {
	case RejectBusy:
		return "busy"
	case RejectCapacity:
		return "capacity"
	case RejectBadHello:
		return "bad-hello"
	default:
		return fmt.Sprintf("RejectCode(%d)", uint8(c))
	}
}

// Reject is the server's refusal: sent instead of Accept (or instead of a
// silent close before the handshake), then the connection closes.
type Reject struct {
	Code   RejectCode
	Reason string
}

// RejectedError is what Client.Handshake returns when the server answered
// with a Reject — typed so callers can distinguish "busy, retry later"
// from protocol failures.
type RejectedError struct {
	Code   RejectCode
	Reason string
}

func (e *RejectedError) Error() string {
	if e.Reason == "" {
		return fmt.Sprintf("stream: rejected (%v)", e.Code)
	}
	return fmt.Sprintf("stream: rejected (%v): %s", e.Code, e.Reason)
}

// Accept is the server's handshake reply describing the stream.
type Accept struct {
	Width, Height int
	GOPSize       int
	QStep         int
}

// FramePacket carries one coded frame plus its RoI coordinates.
type FramePacket struct {
	Index   uint32
	Keyenc  bool // reference (intra) frame
	RoI     frame.Rect
	Payload []byte
}

// InputPacket carries one user-input event.
type InputPacket struct {
	Seq     uint32
	Payload []byte
}

// writeMsg frames a message body.
func writeMsg(w io.Writer, t MsgType, body []byte) error {
	if len(body) > MaxBody {
		return fmt.Errorf("%w: body %d exceeds limit", ErrProtocol, len(body))
	}
	hdr := make([]byte, 1, 1+binary.MaxVarintLen32)
	hdr[0] = byte(t)
	hdr = binary.AppendUvarint(hdr, uint64(len(body)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(body) == 0 {
		// Skip empty writes: synchronous transports (net.Pipe) block a
		// zero-length Write until a matching Read that will never come.
		return nil
	}
	_, err := w.Write(body)
	return err
}

// readMsg reads one framed message.
func readMsg(r io.Reader) (MsgType, []byte, error) {
	var tb [1]byte
	if _, err := io.ReadFull(r, tb[:]); err != nil {
		return 0, nil, err
	}
	br := byteReader{r: r}
	n, err := binary.ReadUvarint(&br)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: bad length: %v", ErrProtocol, err)
	}
	if n > MaxBody {
		return 0, nil, fmt.Errorf("%w: body %d exceeds limit", ErrProtocol, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: short body: %v", ErrProtocol, err)
	}
	return MsgType(tb[0]), body, nil
}

type byteReader struct{ r io.Reader }

func (b *byteReader) ReadByte() (byte, error) {
	var buf [1]byte
	_, err := io.ReadFull(b.r, buf[:])
	return buf[0], err
}

// --- message bodies -----------------------------------------------------------

// WriteHello sends a Hello message.
func WriteHello(w io.Writer, h Hello) error {
	if len(h.Device) > 255 {
		return fmt.Errorf("%w: device name too long", ErrProtocol)
	}
	body := []byte{byte(len(h.Device))}
	body = append(body, h.Device...)
	body = binary.AppendUvarint(body, uint64(h.RoIWindow))
	body = binary.AppendUvarint(body, uint64(h.Scale))
	return writeMsg(w, MsgHello, body)
}

func parseHello(body []byte) (Hello, error) {
	var h Hello
	if len(body) < 1 {
		return h, fmt.Errorf("%w: empty hello", ErrProtocol)
	}
	n := int(body[0])
	body = body[1:]
	if len(body) < n {
		return h, fmt.Errorf("%w: truncated device name", ErrProtocol)
	}
	h.Device = string(body[:n])
	body = body[n:]
	vals, err := readUvarints(body, 2)
	if err != nil {
		return h, err
	}
	h.RoIWindow = int(vals[0])
	h.Scale = int(vals[1])
	if h.RoIWindow <= 0 || h.Scale <= 0 {
		return h, fmt.Errorf("%w: non-positive hello fields", ErrProtocol)
	}
	return h, nil
}

// WriteAccept sends an Accept message.
func WriteAccept(w io.Writer, a Accept) error {
	var body []byte
	for _, v := range []int{a.Width, a.Height, a.GOPSize, a.QStep} {
		body = binary.AppendUvarint(body, uint64(v))
	}
	return writeMsg(w, MsgAccept, body)
}

func parseAccept(body []byte) (Accept, error) {
	vals, err := readUvarints(body, 4)
	if err != nil {
		return Accept{}, err
	}
	a := Accept{Width: int(vals[0]), Height: int(vals[1]), GOPSize: int(vals[2]), QStep: int(vals[3])}
	if a.Width <= 0 || a.Height <= 0 || a.GOPSize <= 0 || a.QStep <= 0 {
		return Accept{}, fmt.Errorf("%w: non-positive accept fields", ErrProtocol)
	}
	return a, nil
}

// WriteReject sends a Reject message.
func WriteReject(w io.Writer, rej Reject) error {
	if len(rej.Reason) > 255 {
		rej.Reason = rej.Reason[:255]
	}
	body := []byte{byte(rej.Code), byte(len(rej.Reason))}
	body = append(body, rej.Reason...)
	return writeMsg(w, MsgReject, body)
}

func parseReject(body []byte) (Reject, error) {
	if len(body) < 2 {
		return Reject{}, fmt.Errorf("%w: truncated reject", ErrProtocol)
	}
	rej := Reject{Code: RejectCode(body[0])}
	n := int(body[1])
	if len(body) != 2+n {
		return Reject{}, fmt.Errorf("%w: reject reason length %d != %d", ErrProtocol, n, len(body)-2)
	}
	rej.Reason = string(body[2:])
	return rej, nil
}

// WriteFrame sends a FramePacket.
func WriteFrame(w io.Writer, f FramePacket) error {
	body := binary.AppendUvarint(nil, uint64(f.Index))
	key := byte(0)
	if f.Keyenc {
		key = 1
	}
	body = append(body, key)
	for _, v := range []int{f.RoI.X, f.RoI.Y, f.RoI.W, f.RoI.H} {
		body = binary.AppendUvarint(body, uint64(v))
	}
	body = binary.AppendUvarint(body, uint64(len(f.Payload)))
	body = append(body, f.Payload...)
	return writeMsg(w, MsgFrame, body)
}

func parseFrame(body []byte) (FramePacket, error) {
	var f FramePacket
	idx, n := binary.Uvarint(body)
	if n <= 0 {
		return f, fmt.Errorf("%w: bad frame index", ErrProtocol)
	}
	f.Index = uint32(idx)
	body = body[n:]
	if len(body) < 1 {
		return f, fmt.Errorf("%w: truncated frame flags", ErrProtocol)
	}
	f.Keyenc = body[0] == 1
	body = body[1:]
	vals, rest, err := readUvarintsRest(body, 5)
	if err != nil {
		return f, err
	}
	f.RoI = frame.Rect{X: int(vals[0]), Y: int(vals[1]), W: int(vals[2]), H: int(vals[3])}
	plen := int(vals[4])
	if plen != len(rest) {
		return f, fmt.Errorf("%w: payload length %d != %d", ErrProtocol, plen, len(rest))
	}
	f.Payload = rest
	return f, nil
}

// WriteInput sends an InputPacket.
func WriteInput(w io.Writer, in InputPacket) error {
	body := binary.AppendUvarint(nil, uint64(in.Seq))
	body = binary.AppendUvarint(body, uint64(len(in.Payload)))
	body = append(body, in.Payload...)
	return writeMsg(w, MsgInput, body)
}

func parseInput(body []byte) (InputPacket, error) {
	var in InputPacket
	vals, rest, err := readUvarintsRest(body, 2)
	if err != nil {
		return in, err
	}
	in.Seq = uint32(vals[0])
	if int(vals[1]) != len(rest) {
		return in, fmt.Errorf("%w: input payload length mismatch", ErrProtocol)
	}
	in.Payload = rest
	return in, nil
}

// WriteBye sends a Bye message.
func WriteBye(w io.Writer) error { return writeMsg(w, MsgBye, nil) }

func readUvarints(body []byte, n int) ([]uint64, error) {
	vals, rest, err := readUvarintsRest(body, n)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrProtocol, len(rest))
	}
	return vals, nil
}

func readUvarintsRest(body []byte, n int) ([]uint64, []byte, error) {
	vals := make([]uint64, n)
	for i := 0; i < n; i++ {
		v, m := binary.Uvarint(body)
		if m <= 0 {
			return nil, nil, fmt.Errorf("%w: truncated varint field %d", ErrProtocol, i)
		}
		vals[i] = v
		body = body[m:]
	}
	return vals, body, nil
}

// Msg is a decoded protocol message; exactly one field is set.
type Msg struct {
	Type   MsgType
	Hello  *Hello
	Accept *Accept
	Frame  *FramePacket
	Input  *InputPacket
	Reject *Reject
}

// ReadMsg reads and decodes the next message from r.
func ReadMsg(r io.Reader) (Msg, error) {
	t, body, err := readMsg(r)
	if err != nil {
		return Msg{}, err
	}
	out := Msg{Type: t}
	switch t {
	case MsgHello:
		h, err := parseHello(body)
		if err != nil {
			return Msg{}, err
		}
		out.Hello = &h
	case MsgAccept:
		a, err := parseAccept(body)
		if err != nil {
			return Msg{}, err
		}
		out.Accept = &a
	case MsgFrame:
		f, err := parseFrame(body)
		if err != nil {
			return Msg{}, err
		}
		out.Frame = &f
	case MsgInput:
		in, err := parseInput(body)
		if err != nil {
			return Msg{}, err
		}
		out.Input = &in
	case MsgBye:
	case MsgReject:
		rej, err := parseReject(body)
		if err != nil {
			return Msg{}, err
		}
		out.Reject = &rej
	default:
		return Msg{}, fmt.Errorf("%w: unknown message type %d", ErrProtocol, t)
	}
	return out, nil
}
