package stream

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"gamestreamsr/internal/frame"
	"strings"
)

func TestMsgTypeString(t *testing.T) {
	for _, c := range []struct {
		t    MsgType
		want string
	}{
		{MsgHello, "hello"}, {MsgAccept, "accept"}, {MsgFrame, "frame"},
		{MsgInput, "input"}, {MsgBye, "bye"}, {MsgType(99), "MsgType(99)"},
	} {
		if c.t.String() != c.want {
			t.Errorf("%d.String() = %q", c.t, c.t.String())
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := Hello{Device: "Samsung Galaxy Tab S8", RoIWindow: 300, Scale: 2}
	if err := WriteHello(&buf, h); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgHello || *msg.Hello != h {
		t.Fatalf("round trip = %+v", msg)
	}
}

func TestHelloValidation(t *testing.T) {
	var buf bytes.Buffer
	long := make([]byte, 300)
	if err := WriteHello(&buf, Hello{Device: string(long), RoIWindow: 1, Scale: 1}); err == nil {
		t.Error("over-long device name should fail")
	}
	// Zero RoI window rejected on parse.
	buf.Reset()
	if err := WriteHello(&buf, Hello{Device: "x", RoIWindow: 0, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMsg(&buf); err == nil {
		t.Error("zero RoI window should be rejected")
	}
}

func TestAcceptRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	a := Accept{Width: 1280, Height: 720, GOPSize: 60, QStep: 6}
	if err := WriteAccept(&buf, a); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgAccept || *msg.Accept != a {
		t.Fatalf("round trip = %+v", msg)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := func(idx uint32, key bool, x, y, w, h uint8, payload []byte) bool {
		var buf bytes.Buffer
		in := FramePacket{
			Index:  idx,
			Keyenc: key,
			RoI:    frame.Rect{X: int(x), Y: int(y), W: int(w), H: int(h)},
		}
		if payload != nil {
			in.Payload = payload
		}
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		msg, err := ReadMsg(&buf)
		if err != nil || msg.Type != MsgFrame {
			return false
		}
		out := *msg.Frame
		return out.Index == in.Index && out.Keyenc == in.Keyenc &&
			out.RoI == in.RoI && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInputRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := InputPacket{Seq: 42, Payload: []byte("W down")}
	if err := WriteInput(&buf, in); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMsg(&buf)
	if err != nil || msg.Type != MsgInput {
		t.Fatal(err)
	}
	if msg.Input.Seq != 42 || string(msg.Input.Payload) != "W down" {
		t.Fatalf("round trip = %+v", msg.Input)
	}
}

func TestByeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBye(&buf); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMsg(&buf)
	if err != nil || msg.Type != MsgBye {
		t.Fatalf("bye round trip: %v, %v", msg, err)
	}
}

func TestReadMsgRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{byte(MsgHello)},                    // missing length
		{byte(MsgHello), 0x05, 0x01},        // short body
		{0x63, 0x00},                        // unknown type
		{byte(MsgFrame), 0x01, 0xFF},        // truncated frame body
		{byte(MsgAccept), 0x02, 0x00, 0x00}, // zero accept fields
	}
	for i, c := range cases {
		if _, err := ReadMsg(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestReadMsgBodyLimit(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(byte(MsgFrame))
	// Length claiming 1 GB.
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x04})
	if _, err := ReadMsg(&buf); err == nil || !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized body should be rejected: %v", err)
	}
}

func TestFramePayloadLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FramePacket{Payload: []byte("abcd")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw = raw[:len(raw)-1] // drop one payload byte
	// Fix up the outer length prefix: easier to rebuild.
	inner := raw[2:]
	var rebuilt bytes.Buffer
	rebuilt.WriteByte(byte(MsgFrame))
	rebuilt.WriteByte(byte(len(inner)))
	rebuilt.Write(inner)
	if _, err := ReadMsg(&rebuilt); err == nil {
		t.Error("payload length mismatch should fail")
	}
}

// sliceSource serves a fixed set of frames.
type sliceSource struct {
	frames [][]byte
}

func (s *sliceSource) NextFrame(i int) ([]byte, bool, frame.Rect, error) {
	if i >= len(s.frames) {
		return nil, false, frame.Rect{}, io.EOF
	}
	return s.frames[i], i == 0, frame.Rect{X: i, Y: i, W: 10, H: 10}, nil
}

func TestSessionOverPipe(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()

	src := &sliceSource{frames: [][]byte{[]byte("frame0"), []byte("frame1"), []byte("frame2")}}
	inputs := make(chan InputPacket, 4)
	done := make(chan error, 1)
	go func() {
		done <- Serve(server, ServerOptions{
			Accept:  Accept{Width: 160, Height: 90, GOPSize: 60, QStep: 6},
			Source:  src,
			OnInput: func(in InputPacket) { inputs <- in },
		})
	}()

	c := NewClient(client)
	cfg, err := c.Handshake(Hello{Device: "test", RoIWindow: 40, Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Width != 160 || cfg.GOPSize != 60 {
		t.Fatalf("accept = %+v", cfg)
	}
	if c.Config() != cfg {
		t.Error("client should cache the config")
	}
	if err := c.SendInput(InputPacket{Seq: 1, Payload: []byte("jump")}); err != nil {
		t.Fatal(err)
	}
	var got []FramePacket
	for {
		f, err := c.RecvFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, f)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("received %d frames", len(got))
	}
	if !got[0].Keyenc || got[1].Keyenc {
		t.Error("keyframe flags wrong")
	}
	if string(got[2].Payload) != "frame2" || got[2].RoI.X != 2 {
		t.Errorf("frame 2 = %+v", got[2])
	}
	select {
	case in := <-inputs:
		if string(in.Payload) != "jump" || in.Seq != 1 {
			t.Errorf("input = %+v", in)
		}
	case <-time.After(5 * time.Second):
		t.Error("input never delivered")
	}
}

func TestSessionOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	src := &sliceSource{frames: [][]byte{[]byte("a"), []byte("b")}}
	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- Serve(conn, ServerOptions{
			Accept: Accept{Width: 64, Height: 36, GOPSize: 4, QStep: 6},
			Source: src,
		})
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn)
	if _, err := c.Handshake(Hello{Device: "tcp-test", RoIWindow: 16, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := c.RecvFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("received %d frames", n)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestServeValidateRejects(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	done := make(chan error, 1)
	go func() {
		done <- Serve(server, ServerOptions{
			Accept:   Accept{Width: 64, Height: 36, GOPSize: 4, QStep: 6},
			Source:   &sliceSource{},
			Validate: func(h Hello) error { return errors.New("window too small") },
		})
	}()
	go WriteHello(client, Hello{Device: "x", RoIWindow: 4, Scale: 2})
	if err := <-done; err == nil {
		t.Fatal("server should reject the client")
	}
}

func TestServeMaxFrames(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	// An infinite source bounded by MaxFrames.
	infinite := frameFunc(func(i int) ([]byte, bool, frame.Rect, error) {
		return []byte{byte(i)}, false, frame.Rect{}, nil
	})
	done := make(chan error, 1)
	go func() {
		done <- Serve(server, ServerOptions{
			Accept:    Accept{Width: 64, Height: 36, GOPSize: 4, QStep: 6},
			Source:    infinite,
			MaxFrames: 5,
		})
	}()
	c := NewClient(client)
	if _, err := c.Handshake(Hello{Device: "x", RoIWindow: 16, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := c.RecvFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("received %d frames, want 5", n)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

type frameFunc func(int) ([]byte, bool, frame.Rect, error)

func (f frameFunc) NextFrame(i int) ([]byte, bool, frame.Rect, error) { return f(i) }

func TestServeRequiresSource(t *testing.T) {
	if err := Serve(nil, ServerOptions{}); err == nil {
		t.Fatal("missing source should fail")
	}
}

func TestClientRejectsWrongHandshakeReply(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	go func() {
		ReadMsg(server)  // consume hello
		WriteBye(server) // wrong reply
	}()
	c := NewClient(client)
	if _, err := c.Handshake(Hello{Device: "x", RoIWindow: 16, Scale: 2}); err == nil {
		t.Fatal("wrong handshake reply should fail")
	}
}

func TestRejectRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Reject{Code: RejectBusy, Reason: "no SLO headroom: p99 21ms"}
	if err := WriteReject(&buf, in); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgReject || msg.Reject == nil {
		t.Fatalf("message = %+v, want a reject", msg)
	}
	if *msg.Reject != in {
		t.Errorf("round trip = %+v, want %+v", *msg.Reject, in)
	}
	if got := in.Code.String(); got != "busy" {
		t.Errorf("RejectBusy.String() = %q", got)
	}

	// Oversized reasons are truncated to the wire limit, not an error.
	long := Reject{Code: RejectCapacity, Reason: strings.Repeat("x", 300)}
	buf.Reset()
	if err := WriteReject(&buf, long); err != nil {
		t.Fatal(err)
	}
	msg, err = ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(msg.Reject.Reason); n != 255 {
		t.Errorf("truncated reason length = %d, want 255", n)
	}
}
