package stream

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"gamestreamsr/internal/frametrace"
	"gamestreamsr/internal/telemetry"
)

func TestNegotiateVersion(t *testing.T) {
	cases := []struct{ client, want int }{
		{0, ProtocolV1}, // unversioned v1 hello
		{1, ProtocolV1},
		{2, ProtocolV2},
		{3, ProtocolV3},
		{4, ProtocolV4},
		{5, ProtocolV4}, // future client negotiates down to what we speak
		{99, ProtocolV4},
	}
	for _, c := range cases {
		if got := NegotiateVersion(c.client); got != c.want {
			t.Errorf("NegotiateVersion(%d) = %d, want %d", c.client, got, c.want)
		}
	}
}

// serveFrames runs a 3-frame server session on conn with a flight recorder
// attached (so v2 frames carry flight IDs) and returns its error channel.
func serveFrames(conn io.ReadWriter, opt ServerOptions) chan error {
	if opt.Source == nil {
		opt.Source = &sliceSource{frames: [][]byte{[]byte("f0"), []byte("f1"), []byte("f2")}}
	}
	if opt.Accept == (Accept{}) {
		opt.Accept = Accept{Width: 160, Height: 90, GOPSize: 60, QStep: 6}
	}
	done := make(chan error, 1)
	go func() { done <- Serve(conn, opt) }()
	return done
}

// TestHandshakeV2 checks the versioned handshake end to end: negotiated
// version, Cristian clock sync with the offset error bounded by RTT/2
// (both endpoints share one physical clock here, so the true offset is 0),
// and frames carrying the server's flight identity.
func TestHandshakeV2(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	rec := frametrace.New(frametrace.Config{Frames: 8})
	done := serveFrames(server, ServerOptions{Flight: rec})

	c := NewClient(client)
	cfg, err := c.Handshake(Hello{Device: "v2", RoIWindow: 40, Scale: 2, Version: ProtocolVersion})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Version != ProtocolVersion {
		t.Fatalf("negotiated version = %d, want %d", cfg.Version, ProtocolVersion)
	}
	clock := c.Clock()
	if !clock.Synced {
		t.Fatal("v2 handshake should sync the clock")
	}
	if clock.RTT < 0 {
		t.Fatalf("negative rtt %v", clock.RTT)
	}
	// Same physical clock on both ends: the estimate's error — here the
	// offset itself — must respect the Cristian bound (±1µs of timestamp
	// quantisation slack).
	if off := clock.Offset.Abs(); off > clock.RTT/2+time.Microsecond {
		t.Errorf("|offset| %v exceeds RTT/2 %v", off, clock.RTT/2)
	}
	var ids []uint64
	for {
		pkt, err := c.RecvFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if pkt.FlightID == 0 || pkt.SendUnixMicro == 0 {
			t.Fatalf("v2 frame without trace identity: %+v", pkt)
		}
		ids = append(ids, pkt.FlightID)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(ids) != 3 {
		t.Fatalf("received %d frames", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("flight IDs not increasing: %v", ids)
		}
	}
}

// TestV1ClientNewServer: an unversioned client must get a byte-identical
// v1 session from a new server — unversioned Accept, no clock fields, no
// frame trace identity — even when the server records a flight.
func TestV1ClientNewServer(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	rec := frametrace.New(frametrace.Config{Frames: 8})
	done := serveFrames(server, ServerOptions{Flight: rec})

	c := NewClient(client)
	cfg, err := c.Handshake(Hello{Device: "v1", RoIWindow: 40, Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Version != 0 || cfg.RecvUnixMicro != 0 || cfg.SendUnixMicro != 0 {
		t.Fatalf("v1 client got versioned accept: %+v", cfg)
	}
	if c.Clock().Synced {
		t.Error("v1 session must not claim clock sync")
	}
	for {
		pkt, err := c.RecvFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if pkt.FlightID != 0 || pkt.SendUnixMicro != 0 {
			t.Fatalf("v1 frame carries v2 fields: %+v", pkt)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestFutureClientNegotiatesDown: a client announcing a version newer than
// the server speaks gets the server's best, not an error.
func TestFutureClientNegotiatesDown(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	done := serveFrames(server, ServerOptions{})

	c := NewClient(client)
	cfg, err := c.Handshake(Hello{Device: "future", RoIWindow: 40, Scale: 2, Version: ProtocolVersion + 1})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Version != ProtocolVersion {
		t.Fatalf("negotiated %d, want %d", cfg.Version, ProtocolVersion)
	}
	for {
		if _, err := c.RecvFrame(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

// oldParseHello replicates the pre-versioning server's strict Hello parser
// (exact field count, trailing bytes rejected) — the behaviour a v2 client
// must survive by redialling with a v1 hello.
func oldParseHello(body []byte) (Hello, error) {
	var h Hello
	if len(body) < 1 {
		return h, fmt.Errorf("%w: empty hello", ErrProtocol)
	}
	n := int(body[0])
	body = body[1:]
	if len(body) < n {
		return h, fmt.Errorf("%w: truncated device name", ErrProtocol)
	}
	h.Device = string(body[:n])
	vals, err := readUvarints(body[n:], 2)
	if err != nil {
		return h, err
	}
	h.RoIWindow, h.Scale = int(vals[0]), int(vals[1])
	return h, nil
}

// rawBody strips the outer message framing (type byte + length uvarint),
// returning the body an old server's parser would see.
func rawBody(t *testing.T, buf []byte) []byte {
	t.Helper()
	if len(buf) < 2 {
		t.Fatal("short message")
	}
	n, used := binary.Uvarint(buf[1:])
	if used <= 0 || int(n) != len(buf)-1-used {
		t.Fatalf("bad framing: %v", buf)
	}
	return buf[1+used:]
}

// TestOldServerRejectsV2Hello pins the downgrade contract: a strict v1
// parser errors on the versioned hello (so the client knows to redial) and
// accepts the v1 re-hello byte-for-byte.
func TestOldServerRejectsV2Hello(t *testing.T) {
	var v2, v1 bytes.Buffer
	if err := WriteHello(&v2, Hello{Device: "d", RoIWindow: 32, Scale: 2, Version: ProtocolVersion, SendUnixMicro: 12345}); err != nil {
		t.Fatal(err)
	}
	if err := WriteHello(&v1, Hello{Device: "d", RoIWindow: 32, Scale: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := oldParseHello(rawBody(t, v2.Bytes())); err == nil {
		t.Fatal("old strict parser accepted a versioned hello — downgrade redial would never trigger")
	}
	h, err := oldParseHello(rawBody(t, v1.Bytes()))
	if err != nil {
		t.Fatalf("old parser rejected a v1 hello: %v", err)
	}
	if h.Device != "d" || h.RoIWindow != 32 || h.Scale != 2 {
		t.Fatalf("old parse = %+v", h)
	}
}

// TestHelloChannelAbsentLeniency: an old v2 build that announces a newer
// version (its own TestFutureClientNegotiatesDown behaviour) writes a v2
// hello body with Version >= 3 but no channel field. The v3 parser must
// treat the absent field as "no channel" — only a *truncated* channel may
// error — or every old future-proofed client breaks against a new server.
func TestHelloChannelAbsentLeniency(t *testing.T) {
	// A v2-layout hello body claiming version 3: device, then the four
	// uvarint fields, nothing after.
	body := []byte{1, 'd'}
	for _, v := range []uint64{32, 2, 3, 12345} { // roi, scale, version, sendUS
		body = binary.AppendUvarint(body, v)
	}
	h, err := parseHello(body)
	if err != nil {
		t.Fatalf("v3 hello without channel bytes rejected: %v", err)
	}
	if h.Version != 3 || h.Channel != "" {
		t.Fatalf("parsed %+v, want version 3 with no channel", h)
	}
	// A truncated channel (length byte promises more than the body holds)
	// is still an error, not silently empty.
	bad := append(append([]byte(nil), body...), 5, 'a')
	if _, err := parseHello(bad); err == nil {
		t.Fatal("truncated channel field accepted")
	}
}

// TestStatsBackchannel exercises the client → server telemetry path and the
// clean-close Bye over one session.
func TestStatsBackchannel(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	reg := telemetry.NewRegistry()
	stats := make(chan StatsPacket, 4)
	done := serveFrames(server, ServerOptions{
		Metrics: reg,
		OnStats: func(st StatsPacket) { stats <- st },
	})

	c := NewClient(client)
	if _, err := c.Handshake(Hello{Device: "bc", RoIWindow: 40, Scale: 2, Version: ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	want := StatsPacket{
		Seq: 3, WindowFrames: 60, Dropped: 2, Misses: 5,
		DecodeP50: 3 * time.Millisecond, DecodeP99: 7 * time.Millisecond,
		SRP50: 4 * time.Millisecond, SRP99: 9 * time.Millisecond,
		AgeP50: 18 * time.Millisecond, AgeP99: 31 * time.Millisecond,
	}
	if err := c.SendStats(want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-stats:
		if got != want {
			t.Fatalf("stats = %+v, want %+v", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stats report never delivered")
	}
	for {
		if _, err := c.RecvFrame(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	<-done
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counter("stream_client_bye_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client bye never counted")
		}
		time.Sleep(time.Millisecond)
	}
}
