package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteJSON writes the snapshot as indented JSON — the /metrics.json
// payload. Infinite bucket bounds are rendered as the string "+Inf" so the
// output stays valid JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	type jsonBucket struct {
		Upper any   `json:"upper"`
		Count int64 `json:"count"`
	}
	type jsonHist struct {
		Name    string       `json:"name"`
		Count   int64        `json:"count"`
		Sum     float64      `json:"sum"`
		Min     float64      `json:"min"`
		Max     float64      `json:"max"`
		P50     float64      `json:"p50"`
		P95     float64      `json:"p95"`
		P99     float64      `json:"p99"`
		P999    float64      `json:"p999"`
		Buckets []jsonBucket `json:"buckets"`
	}
	out := struct {
		Counters   []CounterValue `json:"counters"`
		Gauges     []GaugeValue   `json:"gauges"`
		Histograms []jsonHist     `json:"histograms"`
	}{Counters: s.Counters, Gauges: s.Gauges}
	for _, h := range s.Histograms {
		jh := jsonHist{Name: h.Name, Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max}
		if h.Count > 0 {
			jh.P50, _ = h.Quantile(50)
			jh.P95, _ = h.Quantile(95)
			jh.P99, _ = h.Quantile(99)
			jh.P999, _ = h.Quantile(99.9)
		}
		for _, b := range h.Buckets {
			jb := jsonBucket{Count: b.Count}
			if math.IsInf(b.Upper, 1) {
				jb.Upper = "+Inf"
			} else {
				jb.Upper = b.Upper
			}
			jh.Buckets = append(jh.Buckets, jb)
		}
		out.Histograms = append(out.Histograms, jh)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4) — the /metrics payload. Histogram buckets are
// emitted cumulatively with the conventional `le` label, plus _sum and
// _count series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", promName(c.Name), promName(c.Name), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", promName(g.Name), promName(g.Name), g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if !math.IsInf(b.Upper, 1) {
				le = formatFloat(b.Upper)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a metric name to the Prometheus charset (dots and dashes
// become underscores).
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}
