package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns the metrics endpoint mux:
//
//	/metrics         Prometheus text exposition
//	/metrics.json    indented JSON snapshot with p50/p95/p99 per histogram
//	/debug/pprof/*   the standard net/http/pprof profiles
//
// The handler is safe with a nil registry (it serves empty snapshots), so
// callers can register it unconditionally and flip telemetry on later.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
