package telemetry

import (
	"io"
	"net/http"
	"net/http/pprof"
)

// FlightDumper serialises a flight-recorder window as Chrome trace-event
// JSON. It is implemented by frametrace.Recorder and by stream.MultiServer
// (which merges its per-session recorders); the interface lives here so
// the HTTP layer stays free of a frametrace dependency.
type FlightDumper interface {
	WriteFlight(w io.Writer) error
}

// Handler returns the metrics endpoint mux:
//
//	/metrics         Prometheus text exposition
//	/metrics.json    indented JSON snapshot with p50/p95/p99/p99.9 per histogram
//	/debug/flight    Chrome trace-event JSON of the flight recorder's window
//	                 (open it in ui.perfetto.dev); 404 when no recorder is wired
//	/debug/pprof/*   the standard net/http/pprof profiles
//
// The handler is safe with a nil registry (it serves empty snapshots), so
// callers can register it unconditionally and flip telemetry on later.
// flight optionally wires the /debug/flight source; when several are given
// the first non-nil one serves the endpoint. The concrete mux is returned
// so callers can mount additional debug endpoints (e.g. /debug/diag).
func Handler(r *Registry, flight ...FlightDumper) *http.ServeMux {
	var fd FlightDumper
	for _, f := range flight {
		if f != nil {
			fd = f
			break
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		if fd == nil {
			http.Error(w, "no flight recorder attached (run with a flight-enabled pipeline)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = fd.WriteFlight(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
