package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeFlight is a stand-in FlightDumper: a canned JSON payload.
type fakeFlight struct{ payload string }

func (f fakeFlight) WriteFlight(w io.Writer) error {
	_, err := io.WriteString(w, f.payload)
	return err
}

func handlerGet(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

// TestHandlerContentTypes pins the Content-Type of every endpoint: the
// Prometheus text exposition on /metrics, explicit application/json on
// /metrics.json and /debug/flight.
func TestHandlerContentTypes(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	r.Histogram("lat_seconds", LatencyBuckets()).Observe(0.004)
	h := Handler(r, fakeFlight{payload: `{"traceEvents":[]}`})

	code, body, ct := handlerGet(t, h, "/metrics")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics: code %d, Content-Type %q", code, ct)
	}
	if !strings.Contains(body, "hits 1") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}

	code, body, ct = handlerGet(t, h, "/metrics.json")
	if code != http.StatusOK || ct != "application/json" {
		t.Errorf("/metrics.json: code %d, Content-Type %q (want application/json)", code, ct)
	}
	// The JSON snapshot now carries the p99.9 estimate next to p50/p95/p99.
	for _, want := range []string{`"hits"`, `"p99"`, `"p999"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics.json missing %s:\n%s", want, body)
		}
	}

	code, body, ct = handlerGet(t, h, "/debug/flight")
	if code != http.StatusOK || ct != "application/json" {
		t.Errorf("/debug/flight: code %d, Content-Type %q (want application/json)", code, ct)
	}
	if body != `{"traceEvents":[]}` {
		t.Errorf("/debug/flight body = %q", body)
	}
}

// TestHandlerFlightAbsent asserts /debug/flight reports 404 when no
// recorder is wired, rather than serving an empty-but-200 payload a
// dashboard would silently trust.
func TestHandlerFlightAbsent(t *testing.T) {
	for _, h := range []http.Handler{Handler(nil), Handler(nil, nil, nil)} {
		code, body, _ := handlerGet(t, h, "/debug/flight")
		if code != http.StatusNotFound {
			t.Errorf("/debug/flight without recorder: code %d, want 404", code)
		}
		if !strings.Contains(body, "no flight recorder") {
			t.Errorf("/debug/flight 404 body = %q", body)
		}
	}
}

// TestHandlerFlightPicksFirstNonNil asserts the variadic wiring: nil
// dumpers are skipped, the first live one serves the endpoint.
func TestHandlerFlightPicksFirstNonNil(t *testing.T) {
	h := Handler(nil, nil, fakeFlight{payload: "a"}, fakeFlight{payload: "b"})
	code, body, _ := handlerGet(t, h, "/debug/flight")
	if code != http.StatusOK || body != "a" {
		t.Errorf("/debug/flight = %d %q, want 200 \"a\"", code, body)
	}
}

// TestHandlerUnknownPaths asserts unregistered paths 404 on the telemetry
// mux — scrapes of typo'd paths must fail loudly, not return an empty 200.
func TestHandlerUnknownPaths(t *testing.T) {
	h := Handler(NewRegistry(), fakeFlight{payload: "{}"})
	for _, path := range []string{"/", "/metrics.txt", "/metricsjson", "/debug", "/debug/flightt", "/nope"} {
		code, _, _ := handlerGet(t, h, path)
		if code != http.StatusNotFound {
			t.Errorf("%s: code %d, want 404", path, code)
		}
	}
}

// TestHandlerNilRegistry asserts the nil-registry contract of every
// endpoint: empty-but-valid payloads, correct content types.
func TestHandlerNilRegistry(t *testing.T) {
	h := Handler(nil)
	code, _, ct := handlerGet(t, h, "/metrics")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics on nil registry: code %d, Content-Type %q", code, ct)
	}
	code, body, ct := handlerGet(t, h, "/metrics.json")
	if code != http.StatusOK || ct != "application/json" || !strings.Contains(body, "counters") {
		t.Errorf("/metrics.json on nil registry: code %d, Content-Type %q, body %q", code, ct, body)
	}
}
