// Package telemetry is the repo's zero-dependency runtime metrics layer:
// atomic counters, gauges and fixed-bucket histograms behind a Registry
// with a stable Snapshot for tests and JSON/Prometheus-text encoders
// (encode.go) plus an HTTP endpoint with pprof (http.go).
//
// Design constraints, in order:
//
//   - Nil safety. Every method on *Registry, *Counter, *Gauge and
//     *Histogram is a no-op on a nil receiver, so instrumented hot paths
//     (the pipeline engine, the stream server) carry a single possibly-nil
//     *Registry and never branch on "is telemetry on?".
//   - Allocation-light hot path. Instrument sites resolve their metric
//     handles once; Add/Set/Observe touch only atomics — no maps, no
//     locks, no allocation.
//   - Determinism. Metrics observe wall-clock durations and so differ run
//     to run, but they live strictly outside the pipeline's Result; the
//     determinism tests assert that enabling a Registry leaves result
//     JSON byte-identical.
//
// Histogram quantiles are estimated from the bucket counts by
// stats.BucketPercentile, keeping the numeric convention of the existing
// internal/stats summaries.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gamestreamsr/internal/stats"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// AddDuration accumulates d as nanoseconds — the convention for the
// *_ns_total wait counters. No-op on a nil receiver.
func (c *Counter) AddDuration(d time.Duration) { c.Add(int64(d)) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by n (use a negative n to decrement). No-op on a
// nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of float64 observations. Bucket
// bounds are upper bounds in ascending order; one implicit overflow bucket
// catches everything above the last bound. Sum/min/max are kept via CAS so
// Observe stays lock-free under concurrent writers.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits
	minBits atomic.Uint64 // float64 bits, +Inf until first Observe
	maxBits atomic.Uint64 // float64 bits, -Inf until first Observe
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds — the unit every *_seconds
// histogram uses. No-op on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Registry holds named metrics. The zero value is not useful — use
// NewRegistry — but a nil *Registry is a fully functional no-op, which is
// how instrumentation stays optional.
type Registry struct {
	mu       sync.Mutex
	counts   map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts:   map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() int64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge: fn is evaluated at every Snapshot
// and its result appears among the gauges under name. This is how derived
// values — aggregates over live sessions, say — are exported without a
// writer updating a stored gauge. First registration wins; fn must be
// concurrency-safe and must not call back into the registry. No-op on a
// nil registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFns[name]; !ok {
		r.gaugeFns[name] = fn
	}
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later bounds are ignored — first creation
// wins). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Unregister removes the named metric — counter, gauge, gauge func or
// histogram — from the registry, so per-session metrics (whose names embed
// a remote address or channel) don't accumulate without bound under
// session churn. Handles already held keep working; their updates just no
// longer appear in snapshots. Re-creating the name later starts a fresh
// metric. No-op on a nil registry or an unknown name.
func (r *Registry) Unregister(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.counts, name)
	delete(r.gauges, name)
	delete(r.gaugeFns, name)
	delete(r.hists, name)
}

// LatencyBuckets is the default bucket ladder for *_seconds histograms:
// 0.5 ms to ~8 s in powers of two, bracketing both the 16.66 ms frame
// budget and slow simulated runs.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 15)
	for b := 0.0005; b < 10; b *= 2 {
		out = append(out, b)
	}
	return out
}

// ByteBuckets is the default bucket ladder for frame-size histograms:
// 256 B to 4 MiB in powers of four.
func ByteBuckets() []float64 {
	out := make([]float64, 0, 9)
	for b := 256.0; b <= 8<<20; b *= 4 {
		out = append(out, b)
	}
	return out
}

// --- snapshots ---------------------------------------------------------------

// CounterValue is one counter in a Snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a Snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Bucket is one histogram bucket: the count of samples at or below Upper.
// The overflow bucket has Upper = +Inf (serialized as "+Inf" by the
// encoders).
type Bucket struct {
	Upper float64 `json:"upper"`
	Count int64   `json:"count"`
}

// HistogramValue is one histogram in a Snapshot.
type HistogramValue struct {
	Name    string   `json:"name"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets"`
}

// Quantile estimates the p-th percentile (0..100) from the bucket counts
// via stats.BucketPercentile, clamped to the observed min/max.
func (h HistogramValue) Quantile(p float64) (float64, error) {
	bounds := make([]float64, len(h.Buckets))
	counts := make([]int64, len(h.Buckets))
	for i, b := range h.Buckets {
		bounds[i] = b.Upper
		counts[i] = b.Count
	}
	return stats.BucketPercentile(bounds, counts, h.Min, h.Max, p)
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of every metric, sorted by name — the
// stable view tests and the encoders consume.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram and whether it exists.
func (s Snapshot) Histogram(name string) (HistogramValue, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// Snapshot copies every metric. Safe under concurrent writers; returns the
// zero Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counts {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, fn := range r.gaugeFns {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: fn()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Name:  name,
			Count: h.count.Load(),
			Sum:   math.Float64frombits(h.sumBits.Load()),
		}
		if hv.Count > 0 {
			hv.Min = math.Float64frombits(h.minBits.Load())
			hv.Max = math.Float64frombits(h.maxBits.Load())
		}
		for i := range h.counts {
			upper := math.Inf(1)
			if i < len(h.bounds) {
				upper = h.bounds[i]
			}
			hv.Buckets = append(hv.Buckets, Bucket{Upper: upper, Count: h.counts[i].Load()})
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
