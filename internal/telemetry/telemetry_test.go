package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(3)
	r.Counter("c").Inc()
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(-2)
	r.Histogram("h", LatencyBuckets()).Observe(0.5)
	r.Histogram("h", nil).ObserveDuration(time.Millisecond)
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	if s.Counter("c") != 0 || s.Gauge("g") != 0 {
		t.Error("absent metrics must read 0")
	}
	var sb strings.Builder
	if err := s.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(9)
	r.GaugeFunc("gf", func() int64 { return 1 })
	r.Histogram("h", LatencyBuckets()).Observe(0.5)
	for _, name := range []string{"c", "g", "gf", "h"} {
		r.Unregister(name)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("snapshot not empty after unregister: %+v", s)
	}
	// A re-registered name starts fresh — the old handle's state is gone
	// from the registry even if a stale pointer still mutates it.
	if r.Gauge("g").Set(1); r.Snapshot().Gauge("g") != 1 {
		t.Error("re-registered gauge did not start fresh")
	}
	// Unknown names and nil registries are no-ops.
	r.Unregister("never_registered")
	var nilReg *Registry
	nilReg.Unregister("g")
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total").Add(5)
	r.Counter("frames_total").Inc()
	r.Gauge("sessions_active").Set(3)
	r.Gauge("sessions_active").Add(-1)
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if got := s.Counter("frames_total"); got != 6 {
		t.Errorf("counter = %d", got)
	}
	if got := s.Gauge("sessions_active"); got != 2 {
		t.Errorf("gauge = %d", got)
	}
	hv, ok := s.Histogram("lat_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hv.Count != 4 || math.Abs(hv.Sum-5.555) > 1e-9 {
		t.Errorf("count/sum = %d/%f", hv.Count, hv.Sum)
	}
	if hv.Min != 0.005 || hv.Max != 5 {
		t.Errorf("min/max = %f/%f", hv.Min, hv.Max)
	}
	if len(hv.Buckets) != 4 {
		t.Fatalf("buckets = %d", len(hv.Buckets))
	}
	for i, want := range []int64{1, 1, 1, 1} {
		if hv.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d", i, hv.Buckets[i].Count)
		}
	}
	if !math.IsInf(hv.Buckets[3].Upper, 1) {
		t.Error("last bucket must be the overflow bucket")
	}
	if hv.Mean() != hv.Sum/4 {
		t.Errorf("mean = %f", hv.Mean())
	}
	q, err := hv.Quantile(50)
	if err != nil || q < hv.Min || q > hv.Max {
		t.Errorf("p50 = %f, %v", q, err)
	}
}

func TestSameNameReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("counter identity")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("gauge identity")
	}
	if r.Histogram("x", []float64{1}) != r.Histogram("x", []float64{2}) {
		t.Error("histogram identity")
	}
}

func TestObserveBoundaryGoesToBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(1) // exactly on a bound: le-style, belongs to that bucket
	hv, _ := r.Snapshot().Histogram("h")
	if hv.Buckets[0].Count != 1 {
		t.Errorf("boundary sample landed in %+v", hv.Buckets)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const writers, each = 8, 1000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("h", LatencyBuckets())
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(seed + float64(i)/each)
			}
		}(float64(w))
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("n") != writers*each {
		t.Errorf("counter = %d", s.Counter("n"))
	}
	hv, _ := s.Histogram("h")
	if hv.Count != writers*each {
		t.Errorf("histogram count = %d", hv.Count)
	}
	var inBuckets int64
	for _, b := range hv.Buckets {
		inBuckets += b.Count
	}
	if inBuckets != hv.Count {
		t.Errorf("bucket sum %d != count %d", inBuckets, hv.Count)
	}
}

func TestSnapshotIsStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("z").Set(1)
	r.Histogram("m", []float64{1}).Observe(0.5)
	var first, second strings.Builder
	if err := r.Snapshot().WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("snapshot JSON not stable across calls")
	}
	s := r.Snapshot()
	if s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Errorf("counters not sorted: %+v", s.Counters)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total").Add(2)
	r.Gauge("active").Set(1)
	h := r.Histogram("lat.seconds", []float64{0.5})
	h.Observe(0.25)
	h.Observe(2)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE frames_total counter",
		"frames_total 2",
		"# TYPE active gauge",
		"# TYPE lat_seconds histogram", // dot mapped to underscore
		`lat_seconds_bucket{le="0.5"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`, // cumulative
		"lat_seconds_sum 2.25",
		"lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String(), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "hits 1") || !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics = %q (%s)", body, ct)
	}
	body, ct = get("/metrics.json")
	if !strings.Contains(body, `"hits"`) || !strings.Contains(ct, "application/json") {
		t.Errorf("/metrics.json = %q (%s)", body, ct)
	}
	if body, _ := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("pprof cmdline empty")
	}
}

func TestBucketLadders(t *testing.T) {
	lat := LatencyBuckets()
	if len(lat) == 0 || lat[0] != 0.0005 {
		t.Errorf("latency buckets = %v", lat)
	}
	if lat[len(lat)-1] < 0.01666 {
		t.Error("latency ladder must bracket the 16.66ms frame budget")
	}
	bytes := ByteBuckets()
	if len(bytes) == 0 || bytes[0] != 256 || bytes[len(bytes)-1] != 4<<20 {
		t.Errorf("byte buckets = %v", bytes)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	var v atomic.Int64
	v.Store(7)
	r.GaugeFunc("callback_gauge", v.Load)
	// First registration wins; a duplicate must not replace it.
	r.GaugeFunc("callback_gauge", func() int64 { return -1 })
	if got := r.Snapshot().Gauge("callback_gauge"); got != 7 {
		t.Fatalf("callback gauge = %d, want 7", got)
	}
	v.Store(9)
	if got := r.Snapshot().Gauge("callback_gauge"); got != 9 {
		t.Fatalf("callback gauge after update = %d, want 9", got)
	}
	// Nil-safe on both receiver and function.
	var nilReg *Registry
	nilReg.GaugeFunc("x", v.Load)
	r.GaugeFunc("nil_fn", nil)
}
