// Package trace records execution timelines of pipeline stages so the
// paper's timeline figures — the SR execution plot across GOPs (Fig. 2) and
// the motion-to-photon breakdown (Fig. 10c) — can be regenerated as data
// series and rendered as ASCII Gantt charts.
//
// Concurrency: a Timeline is NOT safe for concurrent use — callers that
// feed it from concurrent stages must serialise Add themselves (the
// pipeline engine wraps it in a mutex; see engineRun.observeSpan). This is
// deliberate: the Timeline is the simple, offline event model, while
// internal/frametrace is the concurrent per-frame recorder. The two share
// one event shape — frametrace converts in both directions (Dump.Timeline
// renders a flight window through Render below; frametrace.FromTimeline
// exports a Timeline as Perfetto-loadable Chrome trace JSON) — so ASCII
// Gantt rendering and the Perfetto export stay two views of the same data.
package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Event is one span on a timeline lane.
type Event struct {
	Lane  string
	Name  string
	Start time.Duration
	End   time.Duration
}

// Duration returns the span length.
func (e Event) Duration() time.Duration { return e.End - e.Start }

// Timeline collects events. The zero value is ready to use.
type Timeline struct {
	events []Event
}

// Add records a span; spans with End < Start are swapped rather than
// rejected so callers can pass intervals in either order.
func (t *Timeline) Add(lane, name string, start, end time.Duration) {
	if end < start {
		start, end = end, start
	}
	t.events = append(t.events, Event{Lane: lane, Name: name, Start: start, End: end})
}

// Events returns the recorded events in insertion order.
func (t *Timeline) Events() []Event {
	return append([]Event(nil), t.events...)
}

// Lanes returns the distinct lane names in first-appearance order.
func (t *Timeline) Lanes() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range t.events {
		if !seen[e.Lane] {
			seen[e.Lane] = true
			out = append(out, e.Lane)
		}
	}
	return out
}

// Span returns the earliest start and latest end across all events.
func (t *Timeline) Span() (time.Duration, time.Duration) {
	if len(t.events) == 0 {
		return 0, 0
	}
	lo, hi := t.events[0].Start, t.events[0].End
	for _, e := range t.events[1:] {
		if e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
	}
	return lo, hi
}

// TotalByName sums event durations grouped by name — the per-stage totals
// of a latency breakdown.
func (t *Timeline) TotalByName() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, e := range t.events {
		out[e.Name] += e.Duration()
	}
	return out
}

// Render writes an ASCII Gantt chart of the timeline, one row per lane,
// width columns wide. It is what `gssr run fig2` prints.
func (t *Timeline) Render(w io.Writer, width int) error {
	if width < 20 {
		width = 20
	}
	lo, hi := t.Span()
	if hi == lo {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	scale := float64(width) / float64(hi-lo)
	lanes := t.Lanes()
	labelW := 0
	for _, l := range lanes {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for _, lane := range lanes {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		var evs []Event
		for _, e := range t.events {
			if e.Lane == lane {
				evs = append(evs, e)
			}
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		for _, e := range evs {
			s := int(float64(e.Start-lo) * scale)
			f := int(float64(e.End-lo) * scale)
			if f >= width {
				f = width - 1
			}
			if s > f {
				s = f
			}
			mark := byte('#')
			if len(e.Name) > 0 {
				mark = e.Name[0]
			}
			for i := s; i <= f; i++ {
				row[i] = mark
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelW, lane, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  %s → %s\n", labelW, "", fmtDur(lo), fmtDur(hi))
	return err
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}
