package trace

import (
	"strings"
	"testing"
	"time"
)

func TestAddAndEvents(t *testing.T) {
	var tl Timeline
	tl.Add("npu", "sr", 0, 16*time.Millisecond)
	tl.Add("gpu", "bilinear", 2*time.Millisecond, 3*time.Millisecond)
	evs := tl.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Duration() != 16*time.Millisecond {
		t.Error("duration")
	}
	// Returned slice is a copy.
	evs[0].Name = "mutated"
	if tl.Events()[0].Name != "sr" {
		t.Error("Events must return a copy")
	}
}

func TestAddSwapsReversedSpan(t *testing.T) {
	var tl Timeline
	tl.Add("l", "x", 5*time.Millisecond, 2*time.Millisecond)
	e := tl.Events()[0]
	if e.Start != 2*time.Millisecond || e.End != 5*time.Millisecond {
		t.Errorf("span not normalised: %+v", e)
	}
}

func TestLanesOrder(t *testing.T) {
	var tl Timeline
	tl.Add("b", "x", 0, 1)
	tl.Add("a", "y", 0, 1)
	tl.Add("b", "z", 1, 2)
	lanes := tl.Lanes()
	if len(lanes) != 2 || lanes[0] != "b" || lanes[1] != "a" {
		t.Errorf("lanes = %v", lanes)
	}
}

func TestSpan(t *testing.T) {
	var tl Timeline
	if lo, hi := tl.Span(); lo != 0 || hi != 0 {
		t.Error("empty span")
	}
	tl.Add("l", "a", 3*time.Millisecond, 9*time.Millisecond)
	tl.Add("l", "b", time.Millisecond, 5*time.Millisecond)
	lo, hi := tl.Span()
	if lo != time.Millisecond || hi != 9*time.Millisecond {
		t.Errorf("span = %v..%v", lo, hi)
	}
}

func TestTotalByName(t *testing.T) {
	var tl Timeline
	tl.Add("l", "decode", 0, 2*time.Millisecond)
	tl.Add("l", "decode", 10*time.Millisecond, 13*time.Millisecond)
	tl.Add("l", "sr", 0, time.Millisecond)
	totals := tl.TotalByName()
	if totals["decode"] != 5*time.Millisecond || totals["sr"] != time.Millisecond {
		t.Errorf("totals = %v", totals)
	}
}

func TestRender(t *testing.T) {
	var tl Timeline
	tl.Add("npu", "sr", 0, 10*time.Millisecond)
	tl.Add("gpu", "bilinear", 0, 2*time.Millisecond)
	var sb strings.Builder
	if err := tl.Render(&sb, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "npu") || !strings.Contains(out, "gpu") {
		t.Errorf("missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "s") || !strings.Contains(out, "b") {
		t.Errorf("missing event marks:\n%s", out)
	}
	// The npu bar must be longer than the gpu bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[0], "s") <= strings.Count(lines[1], "b") {
		t.Errorf("bar lengths don't reflect durations:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	var tl Timeline
	var sb strings.Builder
	if err := tl.Render(&sb, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("empty render = %q", sb.String())
	}
}

func TestRenderNarrowWidthClamped(t *testing.T) {
	var tl Timeline
	tl.Add("l", "a", 0, time.Millisecond)
	var sb strings.Builder
	if err := tl.Render(&sb, 1); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Error("render produced nothing")
	}
}
