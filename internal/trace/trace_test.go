package trace

import (
	"strings"
	"testing"
	"time"
)

func TestAddAndEvents(t *testing.T) {
	var tl Timeline
	tl.Add("npu", "sr", 0, 16*time.Millisecond)
	tl.Add("gpu", "bilinear", 2*time.Millisecond, 3*time.Millisecond)
	evs := tl.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Duration() != 16*time.Millisecond {
		t.Error("duration")
	}
	// Returned slice is a copy.
	evs[0].Name = "mutated"
	if tl.Events()[0].Name != "sr" {
		t.Error("Events must return a copy")
	}
}

func TestAddSwapsReversedSpan(t *testing.T) {
	var tl Timeline
	tl.Add("l", "x", 5*time.Millisecond, 2*time.Millisecond)
	e := tl.Events()[0]
	if e.Start != 2*time.Millisecond || e.End != 5*time.Millisecond {
		t.Errorf("span not normalised: %+v", e)
	}
}

func TestLanesOrder(t *testing.T) {
	var tl Timeline
	tl.Add("b", "x", 0, 1)
	tl.Add("a", "y", 0, 1)
	tl.Add("b", "z", 1, 2)
	lanes := tl.Lanes()
	if len(lanes) != 2 || lanes[0] != "b" || lanes[1] != "a" {
		t.Errorf("lanes = %v", lanes)
	}
}

func TestSpan(t *testing.T) {
	var tl Timeline
	if lo, hi := tl.Span(); lo != 0 || hi != 0 {
		t.Error("empty span")
	}
	tl.Add("l", "a", 3*time.Millisecond, 9*time.Millisecond)
	tl.Add("l", "b", time.Millisecond, 5*time.Millisecond)
	lo, hi := tl.Span()
	if lo != time.Millisecond || hi != 9*time.Millisecond {
		t.Errorf("span = %v..%v", lo, hi)
	}
}

func TestTotalByName(t *testing.T) {
	var tl Timeline
	tl.Add("l", "decode", 0, 2*time.Millisecond)
	tl.Add("l", "decode", 10*time.Millisecond, 13*time.Millisecond)
	tl.Add("l", "sr", 0, time.Millisecond)
	totals := tl.TotalByName()
	if totals["decode"] != 5*time.Millisecond || totals["sr"] != time.Millisecond {
		t.Errorf("totals = %v", totals)
	}
}

func TestRender(t *testing.T) {
	var tl Timeline
	tl.Add("npu", "sr", 0, 10*time.Millisecond)
	tl.Add("gpu", "bilinear", 0, 2*time.Millisecond)
	var sb strings.Builder
	if err := tl.Render(&sb, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "npu") || !strings.Contains(out, "gpu") {
		t.Errorf("missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "s") || !strings.Contains(out, "b") {
		t.Errorf("missing event marks:\n%s", out)
	}
	// The npu bar must be longer than the gpu bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[0], "s") <= strings.Count(lines[1], "b") {
		t.Errorf("bar lengths don't reflect durations:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	var tl Timeline
	var sb strings.Builder
	if err := tl.Render(&sb, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("empty render = %q", sb.String())
	}
}

func TestRenderNarrowWidthClamped(t *testing.T) {
	var tl Timeline
	tl.Add("l", "a", 0, time.Millisecond)
	var sb strings.Builder
	if err := tl.Render(&sb, 1); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Error("render produced nothing")
	}
	// Any width below 20 is raised to 20 columns between the pipes.
	bar := barOf(t, sb.String(), 0)
	if len(bar) != 20 {
		t.Errorf("bar width = %d, want clamped 20:\n%s", len(bar), sb.String())
	}
}

// barOf extracts the characters between the pipes of render row i.
func barOf(t *testing.T, out string, i int) string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if i >= len(lines) {
		t.Fatalf("no row %d in:\n%s", i, out)
	}
	open := strings.IndexByte(lines[i], '|')
	close := strings.LastIndexByte(lines[i], '|')
	if open < 0 || close <= open {
		t.Fatalf("row %d has no bar: %q", i, lines[i])
	}
	return lines[i][open+1 : close]
}

func TestRenderSingleEvent(t *testing.T) {
	var tl Timeline
	tl.Add("npu", "sr", 2*time.Millisecond, 6*time.Millisecond)
	var sb strings.Builder
	if err := tl.Render(&sb, 30); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// A lone span covers the whole scale: the bar is solid marks.
	bar := barOf(t, out, 0)
	if got := strings.Count(bar, "s"); got != len(bar) {
		t.Errorf("single event fills %d/%d columns:\n%s", got, len(bar), out)
	}
	if !strings.Contains(out, "2.0ms") || !strings.Contains(out, "6.0ms") {
		t.Errorf("footer should show the span bounds:\n%s", out)
	}
}

func TestRenderClampsRightEdge(t *testing.T) {
	var tl Timeline
	const width = 24
	// The longest span scales to exactly `width` columns and must be
	// clamped into the last cell rather than writing past the row.
	tl.Add("a", "x", 0, 10*time.Millisecond)
	// A zero-duration span at the right edge exercises the start>end
	// repair after clamping.
	tl.Add("b", "y", 10*time.Millisecond, 10*time.Millisecond)
	var sb strings.Builder
	if err := tl.Render(&sb, width); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	barA := barOf(t, out, 0)
	barB := barOf(t, out, 1)
	if len(barA) != width || len(barB) != width {
		t.Fatalf("bar widths = %d,%d, want %d:\n%s", len(barA), len(barB), width, out)
	}
	if barA[width-1] != 'x' {
		t.Errorf("long span should reach the clamped right edge:\n%s", out)
	}
	if barB[width-1] != 'y' {
		t.Errorf("zero-width span at the edge should land in the last cell:\n%s", out)
	}
	if strings.Count(barB, "y") != 1 {
		t.Errorf("zero-duration span should mark exactly one cell:\n%s", out)
	}
}

func TestTotalByNameEmpty(t *testing.T) {
	var tl Timeline
	totals := tl.TotalByName()
	if len(totals) != 0 {
		t.Errorf("empty timeline totals = %v", totals)
	}
	// Usable as a map even when empty.
	if totals["absent"] != 0 {
		t.Error("missing name should read as zero")
	}
}
