package upscale

import (
	"testing"

	"gamestreamsr/internal/bufpool"
	"gamestreamsr/internal/frame"
)

// TestResizeIntoSteadyStateAllocs is the upscale kernel's allocation
// regression gate: with a warm pool and weights cache, a full-frame resample
// must not allocate beyond the parallel layer's per-chunk job submissions.
func TestResizeIntoSteadyStateAllocs(t *testing.T) {
	src := frame.NewImagePacked(80, 60)
	for i := range src.R {
		src.R[i] = uint8(i * 7)
		src.G[i] = uint8(i * 13)
		src.B[i] = uint8(i * 29)
	}
	pool := bufpool.New()
	dst := frame.NewImagePacked(160, 120)
	for _, k := range []Kind{Bilinear, Bicubic, Lanczos3} {
		// Warm the pool, the weights cache and the worker scratch.
		if err := ResizeInto(dst, src, k, pool); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if err := ResizeInto(dst, src, k, pool); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("%v: pooled ResizeInto %.1f allocs/run", k, allocs)
		if allocs > 80 {
			t.Errorf("%v: pooled ResizeInto allocates %.1f objects/run", k, allocs)
		}
	}
}

// TestResizePlaneIntoSteadyStateAllocs covers the float64 plane path used by
// the NEMO/SR-decoder reconstructions.
func TestResizePlaneIntoSteadyStateAllocs(t *testing.T) {
	srcW, srcH, dstW, dstH := 64, 48, 128, 96
	src := make([]float64, srcW*srcH)
	for i := range src {
		src[i] = float64(i % 251)
	}
	pool := bufpool.New()
	dst := make([]float64, dstW*dstH)
	if err := ResizePlaneInto(dst, src, srcW, srcH, dstW, dstH, Bilinear, pool); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := ResizePlaneInto(dst, src, srcW, srcH, dstW, dstH, Bilinear, pool); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("pooled ResizePlaneInto %.1f allocs/run", allocs)
	if allocs > 40 {
		t.Errorf("pooled ResizePlaneInto allocates %.1f objects/run", allocs)
	}
}
