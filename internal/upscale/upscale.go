// Package upscale implements the traditional (non-DNN) frame upscalers the
// paper uses and compares against: nearest-neighbour, bilinear (the client
// GPU's GL_LINEAR path, §IV-C), bicubic (Catmull-Rom) and Lanczos-3 (the
// quality-preserving kernels the §VI decoder prototype proposes for RoI
// regions). It also provides Merge, which composites a DNN-upscaled RoI back
// into a bilinearly upscaled frame — step ❾ of Fig. 6.
//
// All upscalers are separable polyphase resamplers over the planar RGB
// images of internal/frame and are exact on the class of images their kernel
// reproduces (constants for all, linear ramps for bilinear and up), which the
// property tests exploit.
package upscale

import (
	"fmt"
	"math"
	"sync"

	"gamestreamsr/internal/bufpool"
	"gamestreamsr/internal/frame"
	"gamestreamsr/internal/parallel"
)

// Kind selects an interpolation kernel.
type Kind int

const (
	// Nearest is nearest-neighbour sampling.
	Nearest Kind = iota
	// Bilinear is the 2-tap triangle kernel (GL_LINEAR).
	Bilinear
	// Bicubic is the Catmull-Rom 4-tap cubic.
	Bicubic
	// Lanczos3 is the 6-tap windowed-sinc kernel.
	Lanczos3
	// Area is the box (pixel-area) kernel — the correct anti-aliasing
	// filter for integer downscaling (how a GPU resolves supersamples).
	Area
)

func (k Kind) String() string {
	switch k {
	case Nearest:
		return "nearest"
	case Bilinear:
		return "bilinear"
	case Bicubic:
		return "bicubic"
	case Lanczos3:
		return "lanczos3"
	case Area:
		return "area"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// support returns the kernel radius in source pixels.
func (k Kind) support() float64 {
	switch k {
	case Nearest:
		return 0.5
	case Bilinear:
		return 1
	case Bicubic:
		return 2
	case Lanczos3:
		return 3
	case Area:
		return 0.5
	default:
		return 1
	}
}

// weight evaluates the kernel at distance x.
func (k Kind) weight(x float64) float64 {
	x = math.Abs(x)
	switch k {
	case Nearest:
		if x <= 0.5 {
			return 1
		}
		return 0
	case Bilinear:
		if x < 1 {
			return 1 - x
		}
		return 0
	case Bicubic:
		// Catmull-Rom (a = −0.5).
		const a = -0.5
		switch {
		case x < 1:
			return (a+2)*x*x*x - (a+3)*x*x + 1
		case x < 2:
			return a*x*x*x - 5*a*x*x + 8*a*x - 4*a
		default:
			return 0
		}
	case Lanczos3:
		if x < 1e-9 {
			return 1
		}
		if x >= 3 {
			return 0
		}
		px := math.Pi * x
		return 3 * math.Sin(px) * math.Sin(px/3) / (px * px)
	case Area:
		// Box kernel; combined with the minification stretch in
		// buildWeights this averages exactly the covered source pixels.
		if x <= 0.5 {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Resize resamples src to dstW×dstH with kernel k. Upscaling and
// downscaling are both supported; when downscaling, the kernel is stretched
// by the scale factor (standard anti-aliased polyphase resampling).
func Resize(src *frame.Image, dstW, dstH int, k Kind) (*frame.Image, error) {
	if dstW <= 0 || dstH <= 0 {
		return nil, fmt.Errorf("upscale: invalid target size %dx%d", dstW, dstH)
	}
	dst := frame.NewImagePacked(dstW, dstH)
	if err := ResizeInto(dst, src, k, nil); err != nil {
		return nil, err
	}
	return dst, nil
}

// ResizeInto resamples src into dst (whose W×H select the target size) with
// kernel k. Every pixel of dst is overwritten, so dst may be a dirty pooled
// image; dst must not alias src. The optional pool supplies the intermediate
// buffer of the separable pass (nil allocates it).
func ResizeInto(dst, src *frame.Image, k Kind, pool *bufpool.Pool) error {
	return ResizeIntoOn(nil, dst, src, k, pool)
}

// ResizeIntoOn is ResizeInto with the row-parallel passes attributed to the
// scheduler client c (nil means the default client).
func ResizeIntoOn(c *parallel.Client, dst, src *frame.Image, k Kind, pool *bufpool.Pool) error {
	if src.W <= 0 || src.H <= 0 {
		return fmt.Errorf("upscale: empty source image %dx%d", src.W, src.H)
	}
	if dst.W <= 0 || dst.H <= 0 {
		return fmt.Errorf("upscale: invalid target size %dx%d", dst.W, dst.H)
	}
	if dst.W == src.W && dst.H == src.H {
		dst.CopyFrom(src)
		return nil
	}
	// Horizontal pass into an intermediate, then vertical pass.
	hw := cachedWeights(src.W, dst.W, k)
	vw := cachedWeights(src.H, dst.H, k)
	mid := pool.Image(dst.W, src.H)
	resampleRows(c, src, mid, hw)
	resampleCols(c, mid, dst, vw)
	pool.PutImage(mid)
	return nil
}

// MustResize is Resize for arguments the caller has validated.
func MustResize(src *frame.Image, dstW, dstH int, k Kind) *frame.Image {
	out, err := Resize(src, dstW, dstH, k)
	if err != nil {
		panic(err)
	}
	return out
}

// tapSet holds the contributing source taps for one destination coordinate.
type tapSet struct {
	first   int
	weights []float64
}

// weightsKey identifies one polyphase filter bank. The pipeline resamples
// the same few geometries every frame, so banks are computed once and
// shared; tapSets are immutable after construction, making the cached
// slices safe to read concurrently.
type weightsKey struct {
	srcN, dstN int
	k          Kind
}

var (
	weightsMu    sync.Mutex
	weightsCache = map[weightsKey][]tapSet{}
)

// cachedWeights returns the (shared, read-only) filter bank for the mapping,
// building and memoising it on first use.
func cachedWeights(srcN, dstN int, k Kind) []tapSet {
	key := weightsKey{srcN: srcN, dstN: dstN, k: k}
	weightsMu.Lock()
	ts, ok := weightsCache[key]
	if !ok {
		// Built under the lock: duplicate work on a cold key is rarer than
		// the contention is cheap, and it keeps a single canonical bank.
		ts = buildWeights(srcN, dstN, k)
		weightsCache[key] = ts
	}
	weightsMu.Unlock()
	return ts
}

// buildWeights computes the polyphase filter bank mapping srcN samples onto
// dstN samples with kernel k, using pixel-center alignment.
func buildWeights(srcN, dstN int, k Kind) []tapSet {
	scale := float64(srcN) / float64(dstN)
	filterScale := 1.0
	if scale > 1 {
		filterScale = scale // stretch kernel when minifying
	}
	support := k.support() * filterScale
	out := make([]tapSet, dstN)
	for d := 0; d < dstN; d++ {
		center := (float64(d)+0.5)*scale - 0.5
		first := int(math.Ceil(center - support))
		last := int(math.Floor(center + support))
		if first < 0 {
			first = 0
		}
		if last > srcN-1 {
			last = srcN - 1
		}
		if last < first {
			// Degenerate tiny support: fall back to the nearest sample.
			first = clampInt(int(center+0.5), 0, srcN-1)
			last = first
		}
		ws := make([]float64, last-first+1)
		sum := 0.0
		for i := first; i <= last; i++ {
			w := k.weight((float64(i) - center) / filterScale)
			ws[i-first] = w
			sum += w
		}
		if sum != 0 {
			inv := 1 / sum
			for i := range ws {
				ws[i] *= inv
			}
		} else {
			// All taps fell on kernel zeros; use the nearest sample.
			for i := range ws {
				ws[i] = 0
			}
			n := clampInt(int(center+0.5), first, last)
			ws[n-first] = 1
		}
		out[d] = tapSet{first: first, weights: ws}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func resampleRows(c *parallel.Client, src, dst *frame.Image, taps []tapSet) {
	// Destination rows are disjoint, so row bands parallelise safely.
	c.For(src.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			srow := y * src.Stride
			drow := y * dst.Stride
			for x := 0; x < dst.W; x++ {
				t := &taps[x]
				var r, g, b float64
				for i, w := range t.weights {
					p := srow + t.first + i
					r += w * float64(src.R[p])
					g += w * float64(src.G[p])
					b += w * float64(src.B[p])
				}
				d := drow + x
				dst.R[d] = clampByte(r)
				dst.G[d] = clampByte(g)
				dst.B[d] = clampByte(b)
			}
		}
	})
}

// colScratch holds the per-worker row accumulators of resampleCols, reused
// across chunks, calls and frames (the buffers grow to the largest row seen).
var colScratch = parallel.NewScratch(func() *[]float64 { return new([]float64) })

func resampleCols(c *parallel.Client, src, dst *frame.Image, taps []tapSet) {
	parallel.ForWithOn(c, dst.H, colScratch, func(y0, y1 int, sp *[]float64) {
		// Tap-outer accumulation: each contributing source row is streamed
		// sequentially into a row accumulator, which is cache-friendlier than
		// striding down columns. Per destination pixel the additions still
		// happen in tap order, so results are bit-identical to the
		// pixel-inner form.
		acc := *sp
		if need := 3 * dst.W; cap(acc) < need {
			acc = make([]float64, need)
			*sp = acc
		} else {
			acc = acc[:need]
		}
		ra := acc[0:dst.W:dst.W]
		ga := acc[dst.W : 2*dst.W : 2*dst.W]
		ba := acc[2*dst.W : 3*dst.W : 3*dst.W]
		for y := y0; y < y1; y++ {
			t := &taps[y]
			clear(ra)
			clear(ga)
			clear(ba)
			for i, w := range t.weights {
				srow := (t.first + i) * src.Stride
				for x := 0; x < dst.W; x++ {
					p := srow + x
					ra[x] += w * float64(src.R[p])
					ga[x] += w * float64(src.G[p])
					ba[x] += w * float64(src.B[p])
				}
			}
			drow := y * dst.Stride
			for x := 0; x < dst.W; x++ {
				d := drow + x
				dst.R[d] = clampByte(ra[x])
				dst.G[d] = clampByte(ga[x])
				dst.B[d] = clampByte(ba[x])
			}
		}
	})
}

func clampByte(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Merge composites the upscaled RoI into the upscaled full frame at the RoI
// coordinates scaled by the upscale factor — step ❾ of the paper's Fig. 6.
// base is the bilinearly upscaled full frame (modified in place), roiHR the
// DNN-upscaled RoI patch, roiLR the RoI rectangle in low-resolution
// coordinates, and scale the upscale factor.
func Merge(base *frame.Image, roiHR *frame.Image, roiLR frame.Rect, scale int) error {
	if scale <= 0 {
		return fmt.Errorf("upscale: invalid scale %d", scale)
	}
	hr := roiLR.Scale(scale)
	if hr.W != roiHR.W || hr.H != roiHR.H {
		return fmt.Errorf("upscale: RoI patch is %dx%d but scaled rect is %dx%d", roiHR.W, roiHR.H, hr.W, hr.H)
	}
	if !hr.In(base.W, base.H) {
		return fmt.Errorf("upscale: scaled RoI %v outside %dx%d frame", hr, base.W, base.H)
	}
	dst, err := base.SubImage(hr.X, hr.Y, hr.W, hr.H)
	if err != nil {
		return err
	}
	dst.CopyFrom(roiHR)
	return nil
}

// ResizePlane resamples a single float64 plane (e.g. a residual plane or a
// motion-vector component field) — the operation NEMO applies to
// non-reference frame data (§II-A of the paper, our §nemo baseline).
func ResizePlane(src []float64, srcW, srcH, dstW, dstH int, k Kind) ([]float64, error) {
	if dstW <= 0 || dstH <= 0 {
		return nil, fmt.Errorf("upscale: invalid plane resample %dx%d -> %dx%d", srcW, srcH, dstW, dstH)
	}
	dst := make([]float64, dstW*dstH)
	if err := ResizePlaneInto(dst, src, srcW, srcH, dstW, dstH, k, nil); err != nil {
		return nil, err
	}
	return dst, nil
}

// ResizePlaneInto is ResizePlane writing into dst, which must have length
// dstW*dstH and is fully overwritten (a dirty pooled buffer is fine; dst
// must not alias src). The optional pool supplies the intermediate buffer.
func ResizePlaneInto(dst, src []float64, srcW, srcH, dstW, dstH int, k Kind, pool *bufpool.Pool) error {
	return ResizePlaneIntoOn(nil, dst, src, srcW, srcH, dstW, dstH, k, pool)
}

// ResizePlaneIntoOn is ResizePlaneInto attributed to the scheduler client c
// (nil means the default client).
func ResizePlaneIntoOn(c *parallel.Client, dst, src []float64, srcW, srcH, dstW, dstH int, k Kind, pool *bufpool.Pool) error {
	if len(src) != srcW*srcH {
		return fmt.Errorf("upscale: plane length %d != %dx%d", len(src), srcW, srcH)
	}
	if srcW <= 0 || srcH <= 0 || dstW <= 0 || dstH <= 0 {
		return fmt.Errorf("upscale: invalid plane resample %dx%d -> %dx%d", srcW, srcH, dstW, dstH)
	}
	if len(dst) != dstW*dstH {
		return fmt.Errorf("upscale: destination length %d != %dx%d", len(dst), dstW, dstH)
	}
	hw := cachedWeights(srcW, dstW, k)
	vw := cachedWeights(srcH, dstH, k)
	mid := pool.Float64s(dstW * srcH)
	c.For(srcH, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < dstW; x++ {
				t := &hw[x]
				var v float64
				for i, w := range t.weights {
					v += w * src[y*srcW+t.first+i]
				}
				mid[y*dstW+x] = v
			}
		}
	})
	c.For(dstH, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			t := &vw[y]
			for x := 0; x < dstW; x++ {
				var v float64
				for i, w := range t.weights {
					v += w * mid[(t.first+i)*dstW+x]
				}
				dst[y*dstW+x] = v
			}
		}
	})
	pool.PutFloat64s(mid)
	return nil
}
