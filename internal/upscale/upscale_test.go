package upscale

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gamestreamsr/internal/frame"
)

func constImage(w, h int, r, g, b uint8) *frame.Image {
	im := frame.NewImage(w, h)
	im.Fill(r, g, b)
	return im
}

func rampImage(w, h int) *frame.Image {
	im := frame.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, uint8(x*255/(w-1)), uint8(y*255/(h-1)), 128)
		}
	}
	return im
}

func noiseImage(w, h int, seed int64) *frame.Image {
	im := frame.NewImage(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range im.R {
		im.R[i] = uint8(rng.Intn(256))
		im.G[i] = uint8(rng.Intn(256))
		im.B[i] = uint8(rng.Intn(256))
	}
	return im
}

func TestKindString(t *testing.T) {
	if Nearest.String() != "nearest" || Bilinear.String() != "bilinear" ||
		Bicubic.String() != "bicubic" || Lanczos3.String() != "lanczos3" {
		t.Error("kind names")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown kind name")
	}
}

// Every kernel must reproduce a constant image exactly (partition of unity
// after normalisation).
func TestConstantPreservation(t *testing.T) {
	for _, k := range []Kind{Nearest, Bilinear, Bicubic, Lanczos3} {
		src := constImage(13, 9, 77, 130, 201)
		for _, sz := range [][2]int{{26, 18}, {39, 27}, {7, 5}, {13, 9}} {
			out, err := Resize(src, sz[0], sz[1], k)
			if err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			for i := range out.R {
				if out.R[i] != 77 || out.G[i] != 130 || out.B[i] != 201 {
					t.Fatalf("%v %dx%d: constant not preserved at %d: (%d,%d,%d)",
						k, sz[0], sz[1], i, out.R[i], out.G[i], out.B[i])
				}
			}
		}
	}
}

// Bilinear and higher-order kernels reproduce linear ramps to within
// rounding when upscaling by an integer factor.
func TestRampPreservation(t *testing.T) {
	src := rampImage(32, 32)
	for _, k := range []Kind{Bilinear, Bicubic, Lanczos3} {
		out := MustResize(src, 64, 64, k)
		// Compare interior against the analytic ramp; boundaries are
		// clamped so we skip a margin of the kernel radius.
		margin := int(2 * k.support() * 2)
		var maxErr float64
		for y := margin; y < 64-margin; y++ {
			for x := margin; x < 64-margin; x++ {
				// Destination pixel center maps to source coordinate
				// (x+0.5)/2-0.5; the source ramp is R = sx*255/31.
				sx := (float64(x)+0.5)/2 - 0.5
				want := sx * 255 / 31
				got := float64(out.R[y*out.Stride+x])
				if e := math.Abs(got - want); e > maxErr {
					maxErr = e
				}
			}
		}
		if maxErr > 1.5 {
			t.Errorf("%v: ramp error %.2f > 1.5", k, maxErr)
		}
	}
}

func TestIdentityResize(t *testing.T) {
	src := noiseImage(21, 17, 4)
	out := MustResize(src, 21, 17, Lanczos3)
	if !src.Equal(out) {
		t.Fatal("identity resize must be exact")
	}
	// And must be a copy, not an alias.
	out.Set(0, 0, 1, 2, 3)
	if src.Equal(out) {
		t.Fatal("identity resize must not alias the source")
	}
}

func TestResizeValidation(t *testing.T) {
	src := constImage(4, 4, 0, 0, 0)
	if _, err := Resize(src, 0, 4, Bilinear); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := Resize(src, 4, -1, Bilinear); err == nil {
		t.Error("negative height should fail")
	}
	if _, err := Resize(frame.NewImage(0, 0), 4, 4, Bilinear); err == nil {
		t.Error("empty source should fail")
	}
}

func TestDownscaleAntiAlias(t *testing.T) {
	// A 1px checkerboard downsampled 4x with a stretched kernel must land
	// near mid-gray, not collapse to one phase.
	src := frame.NewImage(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := uint8(0)
			if (x+y)%2 == 0 {
				v = 255
			}
			src.Set(x, y, v, v, v)
		}
	}
	out := MustResize(src, 16, 16, Bilinear)
	for i := range out.R {
		if out.R[i] < 100 || out.R[i] > 155 {
			t.Fatalf("aliased downscale: pixel %d = %d", i, out.R[i])
		}
	}
}

func TestHigherOrderKernelsSharper(t *testing.T) {
	// Upscaling a downsampled noise image: Lanczos-3 must reconstruct at
	// least as well as bilinear in mean squared error terms.
	hi := noiseSmooth(64, 64, 5)
	lo := MustResize(hi, 32, 32, Bilinear)
	mseOf := func(k Kind) float64 {
		up := MustResize(lo, 64, 64, k)
		var sum float64
		for i := range up.R {
			d := float64(up.R[i]) - float64(hi.R[i])
			sum += d * d
		}
		return sum / float64(len(up.R))
	}
	bil := mseOf(Bilinear)
	lan := mseOf(Lanczos3)
	if lan >= bil {
		t.Errorf("lanczos MSE %.2f should beat bilinear %.2f", lan, bil)
	}
}

// noiseSmooth builds band-limited noise (so reconstruction is meaningful).
func noiseSmooth(w, h int, seed int64) *frame.Image {
	rough := noiseImage(w/4, h/4, seed)
	return MustResize(rough, w, h, Bicubic)
}

func TestMerge(t *testing.T) {
	base := constImage(64, 64, 10, 10, 10)
	roiHR := constImage(20, 20, 200, 200, 200)
	roiLR := frame.Rect{X: 5, Y: 6, W: 10, H: 10}
	if err := Merge(base, roiHR, roiLR, 2); err != nil {
		t.Fatal(err)
	}
	// Inside the scaled RoI.
	if r, _, _ := base.At(10, 12); r != 200 {
		t.Error("RoI top-left not merged")
	}
	if r, _, _ := base.At(29, 31); r != 200 {
		t.Error("RoI bottom-right not merged")
	}
	// Outside.
	if r, _, _ := base.At(9, 12); r != 10 {
		t.Error("pixel left of RoI was overwritten")
	}
	if r, _, _ := base.At(30, 31); r != 10 {
		t.Error("pixel right of RoI was overwritten")
	}
}

func TestMergeValidation(t *testing.T) {
	base := constImage(32, 32, 0, 0, 0)
	roi := constImage(10, 10, 1, 1, 1)
	if err := Merge(base, roi, frame.Rect{X: 0, Y: 0, W: 5, H: 5}, 0); err == nil {
		t.Error("zero scale should fail")
	}
	if err := Merge(base, roi, frame.Rect{X: 0, Y: 0, W: 6, H: 5}, 2); err == nil {
		t.Error("patch/rect mismatch should fail")
	}
	if err := Merge(base, roi, frame.Rect{X: 14, Y: 0, W: 5, H: 5}, 2); err == nil {
		t.Error("out-of-frame RoI should fail")
	}
}

func TestMergeProperty(t *testing.T) {
	// For random valid configurations, pixels outside the scaled RoI are
	// untouched and pixels inside equal the patch.
	f := func(x, y uint8, wseed, hseed uint8) bool {
		const scale = 2
		baseW, baseH := 48, 40
		rw := int(wseed)%8 + 1
		rh := int(hseed)%8 + 1
		rx := int(x) % (baseW/scale - rw + 1)
		ry := int(y) % (baseH/scale - rh + 1)
		base := constImage(baseW, baseH, 3, 3, 3)
		patch := constImage(rw*scale, rh*scale, 250, 250, 250)
		r := frame.Rect{X: rx, Y: ry, W: rw, H: rh}
		if err := Merge(base, patch, r, scale); err != nil {
			return false
		}
		hr := r.Scale(scale)
		for yy := 0; yy < baseH; yy++ {
			for xx := 0; xx < baseW; xx++ {
				v, _, _ := base.At(xx, yy)
				if hr.Contains(xx, yy) {
					if v != 250 {
						return false
					}
				} else if v != 3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestResizePlane(t *testing.T) {
	src := []float64{0, 1, 2, 3}
	out, err := ResizePlane(src, 2, 2, 4, 4, Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 16 {
		t.Fatalf("plane length %d", len(out))
	}
	// Corners replicate source corners (clamped kernel).
	if out[0] != 0 || out[15] != 3 {
		t.Errorf("corners = %f, %f", out[0], out[15])
	}
	// Monotone along rows.
	for x := 1; x < 4; x++ {
		if out[x] < out[x-1] {
			t.Errorf("row not monotone at %d: %v", x, out[:4])
		}
	}
	if _, err := ResizePlane(src, 3, 2, 4, 4, Bilinear); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := ResizePlane(src, 2, 2, 0, 4, Bilinear); err == nil {
		t.Error("invalid target should fail")
	}
}

func TestResizePlaneNegativeValues(t *testing.T) {
	// Residual planes are signed; resampling must not clamp them.
	src := []float64{-10, -10, -10, -10}
	out, err := ResizePlane(src, 2, 2, 3, 3, Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != -10 {
			t.Fatalf("signed plane distorted: %v", out)
		}
	}
}

func TestExtremeScaleFactors(t *testing.T) {
	src := noiseImage(8, 8, 2)
	// 1 -> many and many -> 1.
	big := MustResize(src, 97, 3, Lanczos3)
	if big.W != 97 || big.H != 3 {
		t.Fatal("unexpected size")
	}
	tiny := MustResize(src, 1, 1, Bicubic)
	if tiny.W != 1 || tiny.H != 1 {
		t.Fatal("unexpected tiny size")
	}
}

func BenchmarkBilinear720pTo1440p(b *testing.B) {
	src := noiseImage(1280, 720, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustResize(src, 2560, 1440, Bilinear)
	}
}

func BenchmarkLanczosRoI300(b *testing.B) {
	src := noiseImage(300, 300, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustResize(src, 600, 600, Lanczos3)
	}
}

func TestAreaDownsampleExactAverage(t *testing.T) {
	// Integer 2x downscale with the Area kernel averages each 2x2 tile
	// exactly (within rounding).
	src := frame.NewImage(4, 4)
	vals := []uint8{
		10, 20, 30, 40,
		50, 60, 70, 80,
		90, 100, 110, 120,
		130, 140, 150, 160,
	}
	for i, v := range vals {
		src.R[i], src.G[i], src.B[i] = v, v, v
	}
	out := MustResize(src, 2, 2, Area)
	want := []uint8{35, 55, 115, 135} // tile means
	for i, w := range want {
		if d := int(out.R[i]) - int(w); d < -1 || d > 1 {
			t.Errorf("tile %d = %d, want %d", i, out.R[i], w)
		}
	}
}

func TestAreaKindMetadata(t *testing.T) {
	if Area.String() != "area" {
		t.Errorf("name = %q", Area.String())
	}
	// Constants preserved like every other kernel.
	src := constImage(9, 9, 42, 42, 42)
	out := MustResize(src, 3, 3, Area)
	for i := range out.R {
		if out.R[i] != 42 {
			t.Fatal("area kernel distorted a constant")
		}
	}
}
