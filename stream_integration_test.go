package gamestreamsr_test

import (
	"context"
	"io"
	"net"
	"testing"

	gssr "gamestreamsr"
)

// gameFrameSource adapts a workload + detector + encoder to the streaming
// protocol — what a downstream server embeds.
type gameFrameSource struct {
	game *gssr.Workload
	rd   *gssr.Renderer
	det  *gssr.RoIDetector
	enc  *gssr.CodecEncoder
	w, h int
}

func (s *gameFrameSource) NextFrame(i int) ([]byte, bool, gssr.Rect, error) {
	out := s.game.Render(s.rd, i, s.w, s.h)
	rect, err := s.det.Detect(out.Depth)
	if err != nil {
		return nil, false, gssr.Rect{}, err
	}
	data, ftype, err := s.enc.Encode(out.Color)
	if err != nil {
		return nil, false, gssr.Rect{}, err
	}
	return data, ftype == gssr.ReferenceFrame, rect, nil
}

// The complete loop through the PUBLIC API only: server renders + detects +
// encodes and streams over real TCP; the client decodes, RoI-upscales with
// the SR engine, merges, and verifies quality against a locally rendered
// ground truth.
func TestEndToEndStreamingViaPublicAPI(t *testing.T) {
	const (
		w, h   = 160, 90
		frames = 6
		gop    = 4
		scale  = 2
	)
	game, err := gssr.GameByID("G3")
	if err != nil {
		t.Fatal(err)
	}

	srv := &gssr.StreamServer{
		Accept:    gssr.StreamAccept{Width: w, Height: h, GOPSize: gop, QStep: 6},
		MaxFrames: frames,
		NewSource: func(hello gssr.StreamHello) (gssr.FrameSource, error) {
			det, err := gssr.NewRoIDetector(gssr.RoIConfig{WindowW: hello.RoIWindow, WindowH: hello.RoIWindow})
			if err != nil {
				return nil, err
			}
			enc, err := gssr.NewCodecEncoder(gssr.CodecConfig{Width: w, Height: h, GOPSize: gop, QStep: 6})
			if err != nil {
				return nil, err
			}
			return &gameFrameSource{game: game, rd: &gssr.Renderer{}, det: det, enc: enc, w: w, h: h}, nil
		},
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		srv.Shutdown(context.Background())
		<-done
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	client := gssr.NewStreamClient(conn)
	cfg, err := client.Handshake(gssr.StreamHello{Device: "integration-test", RoIWindow: 36, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Width != w || cfg.GOPSize != gop {
		t.Fatalf("negotiated geometry %+v", cfg)
	}

	dec := gssr.NewCodecDecoder()
	engine := gssr.NewFastSR()
	rd := &gssr.Renderer{}
	received := 0
	for {
		pkt, err := client.RecvFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		df, err := dec.Decode(pkt.Payload)
		if err != nil {
			t.Fatalf("frame %d: %v", pkt.Index, err)
		}
		// Client-side RoI-assisted upscale.
		base, err := gssr.Resize(df.Image, w*scale, h*scale, gssr.Bilinear)
		if err != nil {
			t.Fatal(err)
		}
		roiRect := pkt.RoI.Clamp(w, h)
		patch := df.Image.MustSubImage(roiRect.X, roiRect.Y, roiRect.W, roiRect.H).Compact()
		hr, err := engine.Upscale(patch, scale)
		if err != nil {
			t.Fatal(err)
		}
		if err := gssr.MergeRoI(base, hr, roiRect, scale); err != nil {
			t.Fatal(err)
		}
		// Verify against a locally rendered ground truth.
		gt := game.Render(rd, int(pkt.Index), w*scale, h*scale)
		psnr, err := gssr.PSNR(gt.Color, base)
		if err != nil {
			t.Fatal(err)
		}
		if psnr < 25 {
			t.Errorf("frame %d: end-to-end PSNR %.1f dB too low", pkt.Index, psnr)
		}
		received++
	}
	if received != frames {
		t.Fatalf("received %d frames, want %d", received, frames)
	}
}
